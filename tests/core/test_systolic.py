"""Unit tests for the cycle-accurate trace engines.

The key invariants (validated here per dataflow):

* total trace cycles == the analytical Eq.-1 runtime,
* per-operand request counts match the closed-form SRAM access counts,
* every address in a trace belongs to the correct operand region,
* the skew structure is correct (one new request per port per cycle).
"""

import numpy as np
import pytest

from repro.core.compute_sim import ComputeSimulator
from repro.core.dataflow import Dataflow, analytical_runtime
from repro.core.operand_matrix import (
    FILTER_BASE,
    OFMAP_BASE,
    operand_matrices,
)
from repro.core.systolic import NO_REQUEST, TraceEngine
from repro.topology.layer import ConvLayer, GemmLayer

ALL_DATAFLOWS = [Dataflow.OUTPUT_STATIONARY, Dataflow.WEIGHT_STATIONARY, Dataflow.INPUT_STATIONARY]


def _small_conv():
    return ConvLayer(
        name="c", ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3, channels=3, num_filters=8
    )


def _small_gemm():
    return GemmLayer("g", m=10, n=14, k=6)


@pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
@pytest.mark.parametrize("layer_factory", [_small_conv, _small_gemm])
class TestTraceInvariants:
    def test_total_cycles_match_equation(self, dataflow, layer_factory):
        layer = layer_factory()
        engine = TraceEngine(operand_matrices(layer), dataflow, 4, 4)
        traced = sum(fold.cycles for fold in engine.fold_traces())
        assert traced == analytical_runtime(layer.to_gemm(), dataflow, 4, 4)
        assert traced == engine.total_cycles

    def test_request_counts_match_closed_form(self, dataflow, layer_factory):
        layer = layer_factory()
        engine = TraceEngine(operand_matrices(layer), dataflow, 4, 4)
        sim = ComputeSimulator(4, 4, dataflow)
        result = sim.simulate_layer(layer, with_fold_specs=False)
        traces = list(engine.fold_traces())
        assert sum(t.ifmap_reads for t in traces) == result.ifmap_sram_reads
        assert sum(t.filter_reads for t in traces) == result.filter_sram_reads
        assert sum(t.ofmap_writes for t in traces) == result.ofmap_sram_writes

    def test_output_addresses_in_ofmap_region(self, dataflow, layer_factory):
        engine = TraceEngine(operand_matrices(layer_factory()), dataflow, 4, 4)
        for fold in engine.fold_traces():
            valid = fold.out_port_demand[fold.out_port_demand != NO_REQUEST]
            assert (valid >= OFMAP_BASE).all()

    def test_input_ports_never_see_ofmap(self, dataflow, layer_factory):
        engine = TraceEngine(operand_matrices(layer_factory()), dataflow, 4, 4)
        for fold in engine.fold_traces():
            for matrix in (fold.row_port_demand, fold.col_port_demand):
                valid = matrix[matrix != NO_REQUEST]
                assert (valid < OFMAP_BASE).all()

    def test_fold_start_cycles_contiguous(self, dataflow, layer_factory):
        engine = TraceEngine(operand_matrices(layer_factory()), dataflow, 4, 4)
        expected_start = 0
        for fold in engine.fold_traces():
            assert fold.start_cycle == expected_start
            expected_start += fold.cycles


class TestWeightStationaryStructure:
    def _engine(self):
        return TraceEngine(
            operand_matrices(_small_gemm()), Dataflow.WEIGHT_STATIONARY, 4, 4
        )

    def test_preload_phase_uses_col_ports(self):
        fold = next(self._engine().fold_traces())
        # First R cycles: stationary weights arrive via column ports.
        preload = fold.col_port_demand[:4]
        valid = preload[preload != NO_REQUEST]
        assert valid.size > 0
        assert ((valid >= FILTER_BASE) & (valid < OFMAP_BASE)).all()

    def test_stream_phase_is_skewed(self):
        fold = next(self._engine().fold_traces())
        # Row r's first valid request appears at cycle R + r.
        for r in range(fold.rows_used):
            column = fold.row_port_demand[:, r]
            first = int(np.argmax(column != NO_REQUEST))
            assert first == 4 + r

    def test_every_output_written_once_per_k_fold(self):
        engine = self._engine()
        writes = {}
        for fold in engine.fold_traces():
            valid = fold.out_port_demand[fold.out_port_demand != NO_REQUEST]
            for addr in valid:
                writes[int(addr)] = writes.get(int(addr), 0) + 1
        # Sr = K = 6 -> 2 row folds -> each output written twice (partials).
        assert set(writes.values()) == {2}


class TestOutputStationaryStructure:
    def _engine(self):
        return TraceEngine(
            operand_matrices(_small_gemm()), Dataflow.OUTPUT_STATIONARY, 4, 4
        )

    def test_no_preload_phase(self):
        fold = next(self._engine().fold_traces())
        # OS streams from cycle 0; row port 0 is active immediately.
        assert fold.row_port_demand[0, 0] != NO_REQUEST

    def test_each_output_written_exactly_once(self):
        engine = self._engine()
        seen = set()
        for fold in engine.fold_traces():
            valid = fold.out_port_demand[fold.out_port_demand != NO_REQUEST]
            for addr in valid.tolist():
                assert addr not in seen
                seen.add(addr)
        assert len(seen) == 10 * 14  # M x N

    def test_drain_after_stream(self):
        fold = next(self._engine().fold_traces())
        t = 6  # K
        first_write_cycle = int(
            np.argmax((fold.out_port_demand != NO_REQUEST).any(axis=1))
        )
        assert first_write_cycle == t + 4 - 1  # T + R - 1


class TestInputStationaryStructure:
    def test_preload_loads_ifmap(self):
        engine = TraceEngine(
            operand_matrices(_small_gemm()), Dataflow.INPUT_STATIONARY, 4, 4
        )
        fold = next(engine.fold_traces())
        preload = fold.col_port_demand[:4]
        valid = preload[preload != NO_REQUEST]
        assert (valid < FILTER_BASE).all()  # ifmap region

    def test_row_ports_stream_filters(self):
        engine = TraceEngine(
            operand_matrices(_small_gemm()), Dataflow.INPUT_STATIONARY, 4, 4
        )
        fold = next(engine.fold_traces())
        valid = fold.row_port_demand[fold.row_port_demand != NO_REQUEST]
        assert ((valid >= FILTER_BASE) & (valid < OFMAP_BASE)).all()


class TestEdgeFolds:
    def test_partial_fold_uses_fewer_ports(self):
        # K = 6 on R = 4: second row-fold uses only 2 rows.
        engine = TraceEngine(
            operand_matrices(_small_gemm()), Dataflow.WEIGHT_STATIONARY, 4, 4
        )
        folds = list(engine.fold_traces())
        last_row_fold = [f for f in folds if f.fold_row == 1][0]
        assert last_row_fold.rows_used == 2
        # Unused row ports stay silent.
        assert (last_row_fold.row_port_demand[:, 2:] == NO_REQUEST).all()

    def test_array_larger_than_workload(self):
        layer = GemmLayer("g", m=2, n=3, k=2)
        engine = TraceEngine(
            operand_matrices(layer), Dataflow.OUTPUT_STATIONARY, 8, 8
        )
        folds = list(engine.fold_traces())
        assert len(folds) == 1
        assert folds[0].rows_used == 2
        assert folds[0].cols_used == 3
