"""Unit tests for dataflows, Table-II mapping, and Eqs. 1-3."""

import pytest

from repro.core.dataflow import (
    Dataflow,
    analytical_runtime,
    compute_utilization,
    fold_cycles,
    map_gemm,
    mapping_efficiency,
    spatial_runtime,
    spatiotemporal1_runtime,
    spatiotemporal2_runtime,
)
from repro.errors import MappingError
from repro.topology.layer import GemmShape


class TestDataflowEnum:
    @pytest.mark.parametrize("text,expected", [
        ("os", Dataflow.OUTPUT_STATIONARY),
        ("WS", Dataflow.WEIGHT_STATIONARY),
        (" is ", Dataflow.INPUT_STATIONARY),
    ])
    def test_parse(self, text, expected):
        assert Dataflow.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(MappingError):
            Dataflow.parse("rs")

    def test_stationary_operand(self):
        assert Dataflow.OUTPUT_STATIONARY.stationary_operand == "ofmap"
        assert Dataflow.WEIGHT_STATIONARY.stationary_operand == "filter"
        assert Dataflow.INPUT_STATIONARY.stationary_operand == "ifmap"


class TestTableTwoMapping:
    """The paper's Table II: (Sr, Sc, T) per dataflow."""

    SHAPE = GemmShape(m=100, n=200, k=300)

    def test_input_stationary_is_k_n_m(self):
        mapping = map_gemm(self.SHAPE, Dataflow.INPUT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (300, 200, 100)
        assert (mapping.sr_name, mapping.sc_name, mapping.t_name) == ("K", "N", "M")

    def test_weight_stationary_is_k_m_n(self):
        mapping = map_gemm(self.SHAPE, Dataflow.WEIGHT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (300, 100, 200)
        assert (mapping.sr_name, mapping.sc_name, mapping.t_name) == ("K", "M", "N")

    def test_output_stationary_is_m_n_k(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (100, 200, 300)
        assert (mapping.sr_name, mapping.sc_name, mapping.t_name) == ("M", "N", "K")

    def test_folds(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        assert mapping.folds(32, 32) == 4 * 7


class TestFoldCycles:
    def test_formula(self):
        # 2R + C + T - 2
        assert fold_cycles(4, 8, 10) == 8 + 8 + 10 - 2

    def test_minimal(self):
        assert fold_cycles(1, 1, 1) == 2

    def test_bad_inputs(self):
        with pytest.raises(MappingError):
            fold_cycles(0, 1, 1)
        with pytest.raises(MappingError):
            fold_cycles(1, 1, 0)


class TestEquationOne:
    def test_single_fold(self):
        # GEMM fits exactly: one fold of (2R + C + T - 2).
        shape = GemmShape(m=4, n=4, k=9)
        runtime = analytical_runtime(shape, Dataflow.OUTPUT_STATIONARY, 4, 4)
        assert runtime == (8 + 4 + 9 - 2)

    def test_multiple_folds(self):
        shape = GemmShape(m=8, n=8, k=8)
        runtime = analytical_runtime(shape, Dataflow.OUTPUT_STATIONARY, 4, 4)
        assert runtime == (8 + 4 + 8 - 2) * 2 * 2

    def test_ceiling_behaviour(self):
        # Sr = 9 on R = 4 needs 3 row-folds.
        shape = GemmShape(m=9, n=4, k=5)
        runtime = analytical_runtime(shape, Dataflow.OUTPUT_STATIONARY, 4, 4)
        assert runtime == (8 + 4 + 5 - 2) * 3 * 1

    def test_dataflow_changes_runtime(self):
        # A K-heavy GEMM favours dataflows that stream K (OS).
        shape = GemmShape(m=16, n=16, k=4096)
        os_rt = analytical_runtime(shape, Dataflow.OUTPUT_STATIONARY, 16, 16)
        ws_rt = analytical_runtime(shape, Dataflow.WEIGHT_STATIONARY, 16, 16)
        assert os_rt != ws_rt


class TestSpatioTemporalEquations:
    SHAPE = GemmShape(m=1000, n=1000, k=1000)

    def test_spatial_matches_eq1(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        # Pr=Pc=1 degenerates to Eq. 1.
        assert spatial_runtime(mapping, 16, 16) == analytical_runtime(
            self.SHAPE, Dataflow.OUTPUT_STATIONARY, 16, 16
        )

    def test_spatial_partitioning_divides_folds(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        single = spatial_runtime(mapping, 16, 16, 1, 1)
        quad = spatial_runtime(mapping, 16, 16, 2, 2)
        assert quad < single
        # Perfectly divisible -> exactly 4x fewer folds.
        assert quad * 4 == pytest.approx(single, rel=0.05)

    def test_st1_divides_temporal(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        base = spatiotemporal1_runtime(mapping, 16, 16, 1, 1)
        split = spatiotemporal1_runtime(mapping, 16, 16, 1, 4)
        assert split < base

    def test_st2_divides_temporal_on_rows(self):
        mapping = map_gemm(self.SHAPE, Dataflow.OUTPUT_STATIONARY)
        base = spatiotemporal2_runtime(mapping, 16, 16, 1, 1)
        split = spatiotemporal2_runtime(mapping, 16, 16, 4, 1)
        assert split < base

    def test_equations_match_paper_formulas(self):
        # Hand-check Eqs. 1-3 on small numbers.
        mapping = map_gemm(GemmShape(m=64, n=48, k=100), Dataflow.OUTPUT_STATIONARY)
        r = c = 8
        # Eq1, Pr=2, Pc=2: (2R+C+T-2) * ceil((Sr/Pr)/R) * ceil((Sc/Pc)/C)
        assert spatial_runtime(mapping, r, c, 2, 2) == (16 + 8 + 100 - 2) * 4 * 3
        # Eq2, Pr=2, Pc=2: (2R+C+ceil(T/Pc)-2) * ceil((Sr/Pr)/R) * ceil(Sc/C)
        assert spatiotemporal1_runtime(mapping, r, c, 2, 2) == (16 + 8 + 50 - 2) * 4 * 6
        # Eq3, Pr=2, Pc=2: (2R+C+ceil(T/Pr)-2) * ceil(Sr/R) * ceil((Sc/Pc)/C)
        assert spatiotemporal2_runtime(mapping, r, c, 2, 2) == (16 + 8 + 50 - 2) * 8 * 3


class TestEfficiencyMetrics:
    def test_perfect_mapping_efficiency(self):
        mapping = map_gemm(GemmShape(m=32, n=32, k=7), Dataflow.OUTPUT_STATIONARY)
        assert mapping_efficiency(mapping, 16, 16) == 1.0

    def test_edge_fold_reduces_efficiency(self):
        mapping = map_gemm(GemmShape(m=17, n=16, k=7), Dataflow.OUTPUT_STATIONARY)
        eff = mapping_efficiency(mapping, 16, 16)
        # Two row folds, second uses 1/16 rows: (256 + 16) / 512.
        assert eff == pytest.approx((256 + 16) / 512)

    def test_utilization_below_mapping_efficiency(self):
        shape = GemmShape(m=32, n=32, k=64)
        util = compute_utilization(shape, Dataflow.OUTPUT_STATIONARY, 16, 16)
        mapping = map_gemm(shape, Dataflow.OUTPUT_STATIONARY)
        assert 0 < util < mapping_efficiency(mapping, 16, 16)

    def test_utilization_counts_macs_exactly(self):
        shape = GemmShape(m=16, n=16, k=100)
        util = compute_utilization(shape, Dataflow.OUTPUT_STATIONARY, 16, 16)
        runtime = analytical_runtime(shape, Dataflow.OUTPUT_STATIONARY, 16, 16)
        assert util == pytest.approx(shape.macs / (256 * runtime))
