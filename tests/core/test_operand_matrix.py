"""Unit tests for operand address-matrix generation."""

import numpy as np
import pytest

from repro.core.operand_matrix import (
    FILTER_BASE,
    IFMAP_BASE,
    OFMAP_BASE,
    OperandMatrices,
    classify_address,
    conv_operand_matrices,
    gemm_operand_matrices,
    operand_matrices,
)
from repro.errors import SimulationError
from repro.topology.layer import ConvLayer, GemmLayer


def _conv(**kw):
    defaults = dict(
        name="c", ifmap_h=6, ifmap_w=6, filter_h=3, filter_w=3, channels=2, num_filters=4
    )
    defaults.update(kw)
    return ConvLayer(**defaults)


class TestConvOperands:
    def test_shapes_follow_gemm(self):
        layer = _conv()
        ops = conv_operand_matrices(layer)
        gemm = layer.to_gemm()
        assert ops.ifmap.shape == (gemm.k, gemm.n)
        assert ops.filter.shape == (gemm.m, gemm.k)
        assert ops.ofmap.shape == (gemm.m, gemm.n)

    def test_ifmap_addresses_in_region(self):
        ops = conv_operand_matrices(_conv())
        assert ops.ifmap.min() >= IFMAP_BASE
        assert ops.ifmap.max() < FILTER_BASE

    def test_unique_ifmap_equals_raw_footprint(self):
        # im2col repeats addresses; unique count is the raw ifmap size.
        layer = _conv()
        ops = conv_operand_matrices(layer)
        assert ops.unique_ifmap_words == layer.ifmap_words

    def test_first_window_addresses(self):
        # Window element k=0 of pixel n=0 reads ifmap (h=0, w=0, c=0).
        ops = conv_operand_matrices(_conv())
        assert ops.ifmap[0, 0] == IFMAP_BASE

    def test_stride_changes_addresses(self):
        layer = _conv(stride_h=2, stride_w=2)
        ops = conv_operand_matrices(layer)
        # Second ofmap pixel starts 2 columns over: offset 2 * channels.
        assert ops.ifmap[0, 1] - ops.ifmap[0, 0] == 2 * layer.channels

    def test_channel_is_fastest_axis(self):
        ops = conv_operand_matrices(_conv())
        # k=0 -> (kh=0, kw=0, c=0); k=1 -> c=1: adjacent addresses.
        assert ops.ifmap[1, 0] - ops.ifmap[0, 0] == 1

    def test_filter_row_major(self):
        layer = _conv()
        ops = conv_operand_matrices(layer)
        k = layer.window_size
        assert ops.filter[1, 0] - ops.filter[0, 0] == k
        assert ops.filter[0, 1] - ops.filter[0, 0] == 1

    def test_filter_addresses_unique(self):
        ops = conv_operand_matrices(_conv())
        assert ops.unique_filter_words == ops.filter.size


class TestGemmOperands:
    def test_shapes(self):
        ops = gemm_operand_matrices(GemmLayer("g", m=3, n=4, k=5))
        assert ops.ifmap.shape == (5, 4)
        assert ops.filter.shape == (3, 5)
        assert ops.ofmap.shape == (3, 4)

    def test_all_addresses_unique_per_operand(self):
        ops = gemm_operand_matrices(GemmLayer("g", m=3, n=4, k=5))
        for matrix in (ops.ifmap, ops.filter, ops.ofmap):
            assert np.unique(matrix).size == matrix.size

    def test_regions_disjoint(self):
        ops = gemm_operand_matrices(GemmLayer("g", m=3, n=4, k=5))
        assert ops.ifmap.max() < FILTER_BASE
        assert FILTER_BASE <= ops.filter.min()
        assert ops.filter.max() < OFMAP_BASE
        assert OFMAP_BASE <= ops.ofmap.min()


class TestDispatchAndClassify:
    def test_dispatch_conv(self):
        assert operand_matrices(_conv()).shape.m == 4

    def test_dispatch_gemm(self):
        assert operand_matrices(GemmLayer("g", m=2, n=2, k=2)).shape.k == 2

    def test_classify(self):
        assert classify_address(5) == "ifmap"
        assert classify_address(FILTER_BASE) == "filter"
        assert classify_address(OFMAP_BASE + 1) == "ofmap"

    def test_classify_negative(self):
        with pytest.raises(SimulationError):
            classify_address(-1)


class TestClosedFormUniqueCounts:
    """The builders' closed-form footprints vs the np.unique reference."""

    def test_conv_closed_form_is_stored(self):
        layer = _conv()
        ops = conv_operand_matrices(layer)
        assert ops.ifmap_unique == layer.ifmap_words  # stride 1: full tensor
        assert ops.filter_unique == ops.filter.size

    def test_strided_conv_skips_gap_columns(self):
        # stride 2 with a 1x1 filter touches every other row/column only.
        layer = ConvLayer("s", ifmap_h=7, ifmap_w=7, filter_h=1, filter_w=1,
                          channels=3, num_filters=2, stride_h=2, stride_w=2)
        ops = conv_operand_matrices(layer)
        assert ops.unique_ifmap_words == 4 * 4 * 3
        assert ops.unique_ifmap_words == ops.unique_ifmap_words_reference()
        assert ops.unique_ifmap_words < layer.ifmap_words

    def test_fuzz_closed_form_matches_reference(self):
        import random

        rng = random.Random(1234)
        for trial in range(200):
            fh, fw = rng.randint(1, 5), rng.randint(1, 5)
            layer = ConvLayer(
                f"fuzz{trial}",
                ifmap_h=fh + rng.randint(0, 12),
                ifmap_w=fw + rng.randint(0, 12),
                filter_h=fh,
                filter_w=fw,
                channels=rng.randint(1, 4),
                num_filters=rng.randint(1, 4),
                stride_h=rng.randint(1, 7),
                stride_w=rng.randint(1, 7),
            )
            ops = conv_operand_matrices(layer)
            assert ops.unique_ifmap_words == ops.unique_ifmap_words_reference(), layer
            assert ops.unique_filter_words == ops.unique_filter_words_reference(), layer
        for trial in range(40):
            layer = GemmLayer(
                f"gfuzz{trial}",
                m=rng.randint(1, 9),
                n=rng.randint(1, 9),
                k=rng.randint(1, 9),
            )
            ops = gemm_operand_matrices(layer)
            assert ops.unique_ifmap_words == ops.unique_ifmap_words_reference(), layer
            assert ops.unique_filter_words == ops.unique_filter_words_reference(), layer

    def test_hand_built_matrices_fall_back_to_reference(self):
        ops = conv_operand_matrices(_conv())
        bare = OperandMatrices(
            shape=ops.shape, ifmap=ops.ifmap, filter=ops.filter, ofmap=ops.ofmap
        )
        assert bare.ifmap_unique is None
        assert bare.unique_ifmap_words == ops.unique_ifmap_words
        assert bare.unique_filter_words == ops.unique_filter_words
