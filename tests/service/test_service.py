"""Fast-lane service tests: spec validation, HTTP round trips, admission.

Everything here runs in-process: the real ThreadingHTTPServer on an
ephemeral port, the real client, and — where execution speed matters —
the ``job_runner`` test seam replacing actual simulation so admission,
cancellation, and drain semantics can be exercised without sweeps.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.config.presets import get_preset
from repro.core.report import write_sweep_report
from repro.service import (
    InvalidJobError,
    JobManager,
    ServiceClient,
    start_server,
)
from repro.service.jobs import JobSpec
from repro.topology.models import toy_gemm


@pytest.fixture
def service(tmp_path):
    """A live server over a real JobManager; yields (manager, client)."""
    manager = JobManager(tmp_path / "data", max_queued=8, max_active=1)
    httpd, thread = start_server(manager)
    client = ServiceClient(
        f"http://127.0.0.1:{httpd.server_address[1]}",
        max_retries=0,
        backoff_seed=0,
    )
    yield manager, client
    httpd.shutdown()
    manager.drain(timeout=10.0)


def _stub_service(tmp_path, job_runner, **kwargs):
    manager = JobManager(tmp_path / "data", job_runner=job_runner, **kwargs)
    httpd, thread = start_server(manager)
    client = ServiceClient(
        f"http://127.0.0.1:{httpd.server_address[1]}",
        max_retries=0,
        backoff_seed=0,
    )
    return manager, httpd, client


_PAYLOAD = {
    "name": "smoke",
    "preset": "scale_sim_v2_default",
    "model": "toy_gemm",
    "axes": {"arch.dataflow": ["os", "ws"]},
}


# ------------------------------------------------------------- validation


@pytest.mark.parametrize(
    "mutation",
    [
        {"preset": None},                            # no config source
        {"config_text": "[general]"},                # both config sources
        {"model": None},                             # no workload
        {"topology_csv": "Layer,M,N,K\n"},           # both workloads
        {"name": "../escape"},                       # path-unsafe name
        {"scale": 0},
        {"scale": True},
        {"axes": {"arch.dataflow": []}},
        {"axes": [{"field": "x"}]},
        {"axes": {"": [1]}},
        {"axes": {"arch.dataflow": [[1, 2]]}},
        {"failure_policy": "explode"},
        {"max_attempts": 0},
        {"preset": "no_such_preset"},
        {"model": "no_such_model"},
        {"bogus_field": 1},
    ],
)
def test_job_spec_rejects_bad_payloads(mutation):
    payload = dict(_PAYLOAD)
    for key, value in mutation.items():
        if value is None:
            payload.pop(key, None)
        else:
            payload[key] = value
    with pytest.raises(InvalidJobError):
        JobSpec.from_payload(payload)


def test_job_spec_round_trips_through_payload():
    spec = JobSpec.from_payload(_PAYLOAD)
    again = JobSpec.from_payload(spec.to_payload())
    assert again.to_payload() == spec.to_payload()
    assert again.failure_policy == "degrade"  # the service default


def test_job_spec_rejects_non_object_payload():
    with pytest.raises(InvalidJobError):
        JobSpec.from_payload(["not", "an", "object"])


# ------------------------------------------------------- end-to-end smoke


def test_submit_wait_fetch_matches_direct_run(service, tmp_path):
    manager, client = service
    job = client.submit(_PAYLOAD)
    assert job["state"] in ("queued", "running")
    final = client.wait(job["id"], timeout=120.0)
    assert final["state"] == "done"
    assert final["rows"] == 2
    assert final["progress"] == {"units_done": 2, "units_total": 2}

    spec = SweepSpec(
        base=get_preset("scale_sim_v2_default"),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name="smoke",
    )
    reference = write_sweep_report(SweepRunner().run(spec), tmp_path / "ref.csv")
    assert client.fetch_report(job["id"]) == reference.read_bytes()

    # A second identical job is pure cache hits, visible in /healthz.
    second = client.submit(_PAYLOAD)
    client.wait(second["id"], timeout=60.0)
    health = client.health()
    assert health["result_cache"]["hits"] >= 2
    assert health["jobs"]["done"] == 2
    assert health["artifact_store"] is not None


def test_unknown_routes_and_jobs_are_404(service):
    manager, client = service
    with pytest.raises(ServiceError, match="404"):
        client.status("doesnotexist")
    with pytest.raises(ServiceError, match="404"):
        client._call("GET", "/no/such/route")


def test_failed_job_reports_error(service):
    manager, client = service
    payload = dict(_PAYLOAD, axes={"no.such_field": [1, 2]})
    job = client.submit(payload)
    final = client.wait(job["id"], timeout=60.0)
    assert final["state"] == "failed"
    assert "error" in final


# ------------------------------------------------- admission and capacity


def test_queue_full_returns_429_with_retry_after(tmp_path):
    release = threading.Event()

    def blocked_runner(manager, job):
        release.wait(timeout=30.0)

    manager, httpd, client = _stub_service(
        tmp_path, blocked_runner, max_queued=1, max_active=1
    )
    try:
        first = client.submit(_PAYLOAD)   # occupies the single worker
        deadline = time.monotonic() + 10.0
        while manager.get(first["id"]).state != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.submit(_PAYLOAD)           # occupies the single queue slot

        # The bound is hit: a raw request must see 429 + Retry-After.
        status, headers, body = client._request("POST", "/jobs", _PAYLOAD)
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert json.loads(body)["error"] == "QueueFullError"

        # The retrying client turns the schedule into success once the
        # worker frees up.
        patient = ServiceClient(
            client.base_url, max_retries=8, backoff_seed=7,
            sleep=lambda s: (time.sleep(min(s, 0.05)), release.set()),
        )
        third = patient.submit(_PAYLOAD)
        assert patient.wait(third["id"], timeout=30.0)["state"] == "done"
    finally:
        release.set()
        httpd.shutdown()
        manager.drain(timeout=10.0)


def test_drain_stops_admission_and_flips_readyz(tmp_path):
    manager, httpd, client = _stub_service(tmp_path, lambda m, j: None)
    try:
        assert client.ready()
        manager.begin_drain()
        assert not client.ready()
        status, headers, body = client._request("POST", "/jobs", _PAYLOAD)
        assert status == 503
        assert client.health()["status"] == "draining"
        assert manager.drain(timeout=10.0) is True
    finally:
        httpd.shutdown()


def test_cancel_queued_and_running_jobs(tmp_path):
    started = threading.Event()
    release = threading.Event()

    def blocked_runner(manager, job):
        started.set()
        while not release.wait(timeout=0.02):
            if job.cancel_requested.is_set():
                from repro.service.jobs import JobCancelled

                raise JobCancelled()

    manager, httpd, client = _stub_service(
        tmp_path, blocked_runner, max_queued=4, max_active=1
    )
    try:
        running = client.submit(_PAYLOAD)
        assert started.wait(timeout=10.0)
        queued = client.submit(_PAYLOAD)

        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == "cancelled"

        client.cancel(running["id"])
        final = client.wait(running["id"], timeout=30.0)
        assert final["state"] == "cancelled"

        # Cancelling a terminal job is a 409 conflict.
        with pytest.raises(ServiceError, match="409"):
            client.cancel(queued["id"])
    finally:
        release.set()
        httpd.shutdown()
        manager.drain(timeout=10.0)


# ------------------------------------------------------ in-process recovery


def test_restart_recovers_unfinished_jobs(tmp_path):
    data_dir = tmp_path / "data"
    interrupt = threading.Event()

    def dying_runner(manager, job):
        interrupt.set()
        threading.Event().wait()  # the "crash" below abandons this daemon thread

    manager1 = JobManager(data_dir, job_runner=dying_runner)
    manager1.start()
    job = manager1.submit(_PAYLOAD)
    assert interrupt.wait(timeout=10.0)
    # No drain, no journal terminal event: manager1's process "dies" here
    # (the daemon worker thread is simply abandoned).

    done = threading.Event()

    def instant_runner(manager, job):
        job.rows = 0
        done.set()

    manager2 = JobManager(data_dir, job_runner=instant_runner)
    manager2.start()
    recovered = manager2.get(job.id)
    assert recovered.recovered is True
    assert done.wait(timeout=10.0)
    deadline = time.monotonic() + 10.0
    while recovered.state != "done":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    events = [event["event"] for event in recovered.journal.replay()]
    assert "recovered" in events
    assert events.count("started") == 2  # one per attempt, across processes
    assert manager2.drain(timeout=10.0) is True


def test_restart_loads_finished_jobs_as_history(tmp_path):
    data_dir = tmp_path / "data"
    manager1 = JobManager(data_dir, job_runner=lambda m, j: None)
    manager1.start()
    job = manager1.submit(_PAYLOAD)
    deadline = time.monotonic() + 10.0
    while job.state != "done":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    assert manager1.drain(timeout=10.0) is True

    manager2 = JobManager(data_dir, job_runner=lambda m, j: None)
    assert manager2.recover() == 0  # nothing owed
    history = manager2.get(job.id)
    assert history.state == "done"
    assert history.recovered is False


# ------------------------------------------------------------ client seams


def test_client_retry_honours_retry_after_and_is_deterministic():
    answers = [
        (429, {"Retry-After": "3"}, b'{"error": "QueueFullError"}'),
        (429, {}, b'{"error": "QueueFullError"}'),
        (200, {}, b'{"ok": true}'),
    ]
    sleeps: list[float] = []
    client = ServiceClient(
        "http://unused", max_retries=5, backoff_seed=42,
        sleep=sleeps.append, backoff_base=0.5,
    )
    client._request = lambda *a, **k: answers.pop(0)
    assert client._call("GET", "/jobs") == {"ok": True}
    assert len(sleeps) == 2
    assert sleeps[0] == 3.0  # Retry-After dominates the small first backoff
    assert 0.5 <= sleeps[1] <= 1.0  # jittered second backoff, no header

    # Same seed, same schedule.
    sleeps2: list[float] = []
    client2 = ServiceClient(
        "http://unused", max_retries=5, backoff_seed=42,
        sleep=sleeps2.append, backoff_base=0.5,
    )
    answers2 = [
        (429, {"Retry-After": "3"}, b"{}"),
        (429, {}, b"{}"),
        (200, {}, b'{"ok": true}'),
    ]
    client2._request = lambda *a, **k: answers2.pop(0)
    client2._call("GET", "/jobs")
    assert sleeps2 == sleeps


def test_client_gives_up_after_max_retries():
    client = ServiceClient(
        "http://unused", max_retries=2, backoff_seed=0, sleep=lambda s: None
    )
    client._request = lambda *a, **k: (503, {}, b'{"error": "DrainingError"}')
    with pytest.raises(ServiceError, match="3 attempt"):
        client._call("POST", "/jobs", {})


def test_client_retries_connection_errors():
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionError("refused")
        return 200, {}, b'{"ok": true}'

    client = ServiceClient(
        "http://unused", max_retries=5, backoff_seed=0, sleep=lambda s: None
    )
    client._request = flaky
    assert client._call("GET", "/healthz") == {"ok": True}
