"""Unit tests for the durable job journal and its JSONL helpers."""

import json

from repro.service.journal import JOURNAL_FILENAME, JobJournal
from repro.store import append_json_line, read_json_lines


def test_append_and_replay_round_trip(tmp_path):
    journal = JobJournal.for_job_dir(tmp_path)
    journal.append("submitted", job_id="abc", payload={"model": "toy_gemm"})
    journal.append("started", attempt=1)
    journal.append("done", rows=2)

    events = journal.replay()
    assert [event["event"] for event in events] == ["submitted", "started", "done"]
    assert events[0]["payload"] == {"model": "toy_gemm"}
    assert all("time" in event for event in events)


def test_journal_path_and_missing_file(tmp_path):
    journal = JobJournal.for_job_dir(tmp_path / "job1")
    assert journal.path == tmp_path / "job1" / JOURNAL_FILENAME
    assert journal.replay() == []
    assert journal.terminal_event() is None


def test_terminal_event_found_and_absent(tmp_path):
    journal = JobJournal(tmp_path / "j.jsonl")
    journal.append("submitted")
    journal.append("started")
    assert journal.terminal_event() is None
    journal.append("degraded", failures=1)
    terminal = journal.terminal_event()
    assert terminal is not None and terminal["event"] == "degraded"


def test_replay_drops_torn_tail(tmp_path):
    journal = JobJournal(tmp_path / "j.jsonl")
    journal.append("submitted")
    journal.append("started")
    # Simulate a crash mid-append: the final line is half a JSON object.
    with journal.path.open("a", encoding="utf-8") as handle:
        handle.write('{"event": "done", "ro')
    events = journal.replay()
    assert [event["event"] for event in events] == ["submitted", "started"]
    # Appending after a torn tail keeps the journal usable: the torn
    # fragment has no newline, so the repaired write starts clean.
    append_json_line(journal.path, {"event": "interrupted"})
    # The torn fragment merges with the next line and both are dropped,
    # but everything before the tear stays intact.
    assert [e["event"] for e in journal.replay()][:2] == ["submitted", "started"]


def test_read_json_lines_stops_at_non_dict(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(
        json.dumps({"event": "a"}) + "\n" + json.dumps([1, 2]) + "\n"
        + json.dumps({"event": "b"}) + "\n",
        encoding="utf-8",
    )
    assert [e["event"] for e in read_json_lines(path)] == ["a"]
