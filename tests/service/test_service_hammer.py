"""Concurrency hammer: many client threads against one live server.

Execution is stubbed (``job_runner`` seam) so the test exercises the
contended paths — admission, the job table, cancellation, journaling —
at full speed.  The invariants: the server never hangs, never loses a
job it admitted, answers every over-capacity submit with the documented
429, and every admitted job reaches exactly one terminal state with an
intact journal.
"""

import threading

import pytest

from repro.errors import ServiceError
from repro.service import JobManager, ServiceClient, start_server
from repro.service.journal import TERMINAL_EVENTS

_PAYLOAD = {
    "name": "hammer",
    "preset": "scale_sim_v2_default",
    "model": "toy_gemm",
}

THREADS = 8
SUBMITS_PER_THREAD = 6


@pytest.mark.timeout(120)
def test_hammer_submit_poll_cancel(tmp_path):
    manager = JobManager(
        tmp_path / "data",
        job_runner=lambda m, j: None,
        max_queued=4,
        max_active=2,
        use_store=False,
    )
    httpd, _ = start_server(manager)
    base_url = f"http://127.0.0.1:{httpd.server_address[1]}"
    admitted: list[str] = []
    rejected: list[int] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def hammer(seed: int) -> None:
        client = ServiceClient(
            base_url, max_retries=10, backoff_seed=seed, backoff_base=0.01
        )
        try:
            for number in range(SUBMITS_PER_THREAD):
                status, headers, _ = client._request("POST", "/jobs", _PAYLOAD)
                if status == 429:
                    # Over capacity: contract is 429 + Retry-After, then
                    # the retrying path must eventually get through.
                    assert "Retry-After" in headers
                    with lock:
                        rejected.append(status)
                    job = client.submit(_PAYLOAD)
                else:
                    assert status == 202
                    job = client._decode(status, _)
                with lock:
                    admitted.append(job["id"])
                if number % 3 == 2:
                    try:
                        client.cancel(job["id"])
                    except ServiceError:
                        pass  # already terminal: the documented 409
                client.wait(job["id"], timeout=60.0, poll=0.01)
        except Exception as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
    alive = [thread for thread in threads if thread.is_alive()]
    try:
        assert not alive, f"{len(alive)} hammer threads wedged"
        assert not errors, errors

        jobs = manager.jobs()
        assert len(jobs) == len(admitted) == len(set(admitted))
        terminal = {"done", "cancelled"}
        for job in jobs:
            assert job.state in terminal, (job.id, job.state)
            events = [event["event"] for event in job.journal.replay()]
            assert events[0] == "submitted"
            assert sum(1 for name in events if name in TERMINAL_EVENTS) == 1
        health = manager.health()
        assert health["queue"]["depth"] == 0
        assert health["jobs"]["running"] == 0
    finally:
        httpd.shutdown()
        manager.drain(timeout=10.0)
