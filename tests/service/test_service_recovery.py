"""Crash-recovery integration tests: the real server process dies.

The full robustness story, no in-process shortcuts:

* **SIGKILL mid-job** — a server subprocess accepts a two-unit sweep,
  finishes unit 0 (cached on disk), and wedges inside unit 1 thanks to
  an armed stall fault.  SIGKILL takes it out with no cleanup.  A
  second server on the same ``--data-dir`` replays the journal,
  re-enqueues the job, re-simulates only the lost unit (unit 0 is a
  cache hit), and serves a report CSV byte-identical to an
  uninterrupted serial run.
* **SIGTERM drain** — a server with a finished job drains cleanly on
  SIGTERM: readyz flips to 503 before the socket closes, the exit code
  is 0, and the server journal carries a clean stop marker.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.config.presets import get_preset
from repro.core.report import write_sweep_report
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.store import read_json_lines
from repro.topology.models import toy_gemm

pytestmark = pytest.mark.slow

_SRC = Path(__file__).resolve().parents[2] / "src"

_PAYLOAD = {
    "name": "recovery",
    "preset": "scale_sim_v2_default",
    "model": "toy_gemm",
    "axes": {"arch.dataflow": ["os", "ws"]},
}


def _server_env(fault_plan: list[dict] | None = None) -> dict:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return env


def _spawn_server(data_dir: Path, env: dict, *extra: str) -> tuple[subprocess.Popen, str]:
    """Start a server subprocess on an ephemeral port; returns (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.run.cli",
            "serve",
            "--data-dir",
            str(data_dir),
            "--port",
            "0",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), line
    return proc, line.removeprefix("serving on ")


def _http(method: str, url: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {message}")


def _job_status(url: str, job_id: str) -> dict:
    status, body = _http("GET", f"{url}/jobs/{job_id}")
    assert status == 200, body
    return json.loads(body)


@pytest.mark.timeout(240)
def test_sigkilled_server_recovers_to_byte_identical_report(tmp_path):
    reference = write_sweep_report(
        SweepRunner().run(
            SweepSpec(
                base=get_preset("scale_sim_v2_default"),
                axes=[Axis("arch.dataflow", ("os", "ws"))],
                topologies=[toy_gemm()],
                name="recovery",
            )
        ),
        tmp_path / "reference.csv",
    )

    data_dir = tmp_path / "data"
    # Server 1: unit 0 completes and lands in the on-disk cache; unit 1
    # wedges for longer than the whole test is allowed to take.
    doomed, url = _spawn_server(
        data_dir,
        _server_env([{"kind": "stall", "unit": 1, "attempt": 1, "seconds": 600}]),
    )
    survivor = None
    try:
        status, body = _http("POST", f"{url}/jobs", _PAYLOAD)
        assert status == 202, body
        job_id = json.loads(body)["id"]
        _wait_for(
            lambda: _job_status(url, job_id)["progress"]["units_done"] == 1,
            timeout=120.0,
            message="unit 0 to finish before the stall",
        )
        os.kill(doomed.pid, signal.SIGKILL)
        doomed.wait(timeout=30.0)

        # Server 2, same data dir, faults disarmed: replay + re-enqueue.
        survivor, url2 = _spawn_server(data_dir, _server_env())
        _wait_for(
            lambda: _job_status(url2, job_id)["state"] == "done",
            timeout=120.0,
            message="recovered job to finish",
        )
        final = _job_status(url2, job_id)
        assert final["recovered"] is True
        assert final["rows"] == 2

        status, report = _http("GET", f"{url2}/jobs/{job_id}/report.csv")
        assert status == 200
        assert report == reference.read_bytes()

        # Only the lost unit was re-simulated: unit 0 came from the cache.
        status, body = _http("GET", f"{url2}/healthz")
        health = json.loads(body)
        assert health["result_cache"]["hits"] >= 1

        events = [
            event["event"]
            for event in read_json_lines(
                data_dir / "jobs" / job_id / "journal.jsonl"
            )
        ]
        assert "recovered" in events
        assert events.count("started") == 2
        assert events[-1] == "done"
    finally:
        for proc in (doomed, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)


@pytest.mark.timeout(120)
def test_sigterm_drains_cleanly(tmp_path):
    data_dir = tmp_path / "data"
    proc, url = _spawn_server(data_dir, _server_env(), "--drain-timeout", "20")
    try:
        status, body = _http("POST", f"{url}/jobs", _PAYLOAD)
        assert status == 202, body
        job_id = json.loads(body)["id"]
        _wait_for(
            lambda: _job_status(url, job_id)["state"] == "done",
            timeout=90.0,
            message="job to finish before the drain",
        )
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)

    events = read_json_lines(data_dir / "server.jsonl")
    stops = [event for event in events if event["event"] == "server_stopped"]
    assert len(stops) == 1
    assert stops[0]["clean"] is True
    assert stops[0]["interrupted"] == 0
