"""Integration tests: whole pipelines across module boundaries."""

import pytest

from repro.config.parser import parse_config_text
from repro.config.presets import get_preset
from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    SparsityConfig,
    SystemConfig,
)
from repro.core.simulator import Simulator
from repro.energy.accelergy import AccelergyLite
from repro.run.runner import run_simulation
from repro.topology.models import get_model
from repro.topology.topology import Topology
from repro.utils.csvio import read_csv_rows


class TestConfigToReportsPipeline:
    def test_cfg_text_to_reports(self, tmp_path):
        cfg = parse_config_text(
            """
            [general]
            run_name = integration

            [architecture_presets]
            ArrayHeight = 16
            ArrayWidth = 16
            Dataflow = ws

            [energy]
            Enabled = true
            """
        )
        outputs = run_simulation(cfg, get_model("toy_conv"), output_dir=tmp_path)
        compute_report = [p for p in outputs.report_paths if p.name == "COMPUTE_REPORT.csv"][0]
        rows = read_csv_rows(compute_report)
        assert len(rows) == 3  # header + 2 layers
        assert rows[1][2] == "ws"

    def test_topology_csv_round_trip_through_simulation(self, tmp_path):
        topo = get_model("toy_gemm")
        path = tmp_path / "topo.csv"
        topo.to_csv(path)
        reloaded = Topology.from_csv(path)
        a = Simulator(SystemConfig()).run(topo)
        b = Simulator(SystemConfig()).run(reloaded)
        assert a.total_cycles == b.total_cycles


class TestDramIntegration:
    def test_tpu_preset_on_scaled_resnet(self):
        cfg = get_preset("google_tpu_v2")
        result = Simulator(cfg).run(get_model("resnet18", scale=16))
        assert result.dram_stats is not None
        assert result.dram_stats.reads > 100
        assert result.dram_stats.row_hit_rate > 0.5  # streaming locality
        assert result.total_stall_cycles >= 0

    def test_dram_vs_ideal_same_compute(self):
        topo = get_model("toy_conv")
        arch = ArchitectureConfig(array_rows=8, array_cols=8)
        ideal = Simulator(SystemConfig(arch=arch)).run(topo)
        dram = Simulator(
            SystemConfig(arch=arch, dram=DramConfig(enabled=True))
        ).run(topo)
        assert ideal.total_compute_cycles == dram.total_compute_cycles

    @pytest.mark.parametrize("technology", ["ddr3", "ddr4", "hbm", "lpddr4"])
    def test_all_dram_technologies_run(self, technology):
        cfg = SystemConfig(
            arch=ArchitectureConfig(array_rows=8, array_cols=8),
            dram=DramConfig(enabled=True, technology=technology),
        )
        result = Simulator(cfg).run(get_model("toy_gemm"))
        assert result.total_cycles > 0


class TestEnergyIntegration:
    def test_energy_scales_with_workload(self):
        arch = ArchitectureConfig(array_rows=8, array_cols=8, bandwidth_words=100)
        energy = EnergyConfig(enabled=True)
        engine = AccelergyLite(arch, energy)
        sim = Simulator(SystemConfig(arch=arch, energy=energy))
        small = engine.estimate_run(sim.run(get_model("toy_gemm")))
        large = engine.estimate_run(sim.run(get_model("resnet18", scale=32)))
        assert large.total_pj > small.total_pj

    def test_all_dataflows_produce_energy(self):
        for dataflow in ("os", "ws", "is"):
            arch = ArchitectureConfig(array_rows=8, array_cols=8, dataflow=dataflow)
            engine = AccelergyLite(arch, EnergyConfig(enabled=True))
            run = Simulator(SystemConfig(arch=arch)).run(get_model("toy_conv"))
            assert engine.estimate_run(run).total_pj > 0


class TestSparsityIntegration:
    def test_sparse_run_end_to_end(self, tmp_path):
        cfg = SystemConfig(
            arch=ArchitectureConfig(array_rows=16, array_cols=16, dataflow="ws"),
            sparsity=SparsityConfig(sparsity_support=True),
        )
        topo = get_model("resnet18", scale=16).with_sparsity("2:4")
        outputs = run_simulation(cfg, topo, output_dir=tmp_path)
        assert outputs.sparse_results
        sparse_path = [p for p in outputs.report_paths if "SPARSE" in p.name][0]
        rows = read_csv_rows(sparse_path)
        assert len(rows) == len(topo) + 1

    def test_sparsity_ratio_ordering_end_to_end(self):
        """Figure 5's vertical ordering: sparser models need fewer cycles."""
        totals = {}
        for ratio in ("1:4", "2:4", "4:4"):
            cfg = SystemConfig(
                arch=ArchitectureConfig(array_rows=16, array_cols=16, dataflow="ws"),
                sparsity=SparsityConfig(sparsity_support=True),
            )
            topo = get_model("resnet18", scale=16).with_sparsity(ratio)
            outputs = run_simulation(cfg, topo, write_reports=False)
            totals[ratio] = sum(r.sparse_compute_cycles for r in outputs.sparse_results)
        assert totals["1:4"] < totals["2:4"] < totals["4:4"]


class TestFullFeatureMatrix:
    def test_everything_enabled_at_once(self, tmp_path):
        cfg = SystemConfig(
            arch=ArchitectureConfig(array_rows=16, array_cols=16, dataflow="ws"),
            dram=DramConfig(enabled=True, channels=2),
            energy=EnergyConfig(enabled=True),
            sparsity=SparsityConfig(sparsity_support=True),
        )
        topo = get_model("toy_conv").with_sparsity("2:4")
        outputs = run_simulation(cfg, topo, output_dir=tmp_path)
        assert outputs.total_cycles > 0
        assert outputs.energy_report is not None
        assert outputs.sparse_results
        assert outputs.run_result.dram_stats is not None
        assert len(outputs.report_paths) >= 6
