"""Integration tests asserting the paper's qualitative findings.

Each test pins one claim from the evaluation section — who wins, in
which direction a sweep moves — on scaled-down workloads so the suite
stays fast.  The benchmarks regenerate the full-size numbers.
"""

import pytest

from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.dataflow import Dataflow, analytical_runtime
from repro.core.simulator import Simulator
from repro.dram.address import LINE_BYTES
from repro.dram.dram_sim import RamulatorLite
from repro.energy.accelergy import AccelergyLite
from repro.config.system import EnergyConfig
from repro.layout.integrate import evaluate_layout_slowdown
from repro.topology.models import get_model, vit_base


class TestTableVShape:
    """Larger arrays are faster; smaller arrays are more energy-frugal."""

    @pytest.fixture(scope="class")
    def sweep(self):
        topo = vit_base(scale=2, blocks=1)
        points = {}
        for size in (32, 64, 128):
            arch = ArchitectureConfig(
                array_rows=size, array_cols=size, dataflow="ws", bandwidth_words=200
            )
            run = Simulator(SystemConfig(arch=arch)).run(topo)
            report = AccelergyLite(arch, EnergyConfig(enabled=True)).estimate_run(run)
            points[size] = (run.total_cycles, report.total_mj)
        return points

    def test_latency_decreases_with_array_size(self, sweep):
        assert sweep[32][0] > sweep[64][0] > sweep[128][0]

    def test_energy_increases_with_array_size(self, sweep):
        assert sweep[32][1] < sweep[128][1]

    def test_edp_improves_beyond_smallest(self, sweep):
        edp = {size: cycles * mj for size, (cycles, mj) in sweep.items()}
        assert min(edp[64], edp[128]) < edp[32]


class TestSectionNineDram:
    """WS wins compute cycles on early ResNet layers; DRAM stalls can
    flip the winner to OS (paper Section IX-B)."""

    def test_ws_beats_os_on_compute_cycles(self):
        # Full-size layer shapes (the comparison flips on tiny inputs);
        # the runtime equation is closed-form, so this stays instant.
        topo = get_model("resnet18").first_layers(6)
        cycles = {}
        for dataflow in ("ws", "os"):
            total = sum(
                analytical_runtime(layer.to_gemm(), Dataflow.parse(dataflow), 32, 32)
                for layer in topo
            )
            cycles[dataflow] = total
        assert cycles["ws"] < cycles["os"]

    def test_dram_stalls_shift_the_comparison(self):
        topo = get_model("resnet18", scale=8).first_layers(6)
        gap = {}
        for dataflow in ("ws", "os"):
            arch = ArchitectureConfig(array_rows=32, array_cols=32, dataflow=dataflow)
            ideal = Simulator(SystemConfig(arch=arch)).run(topo).total_cycles
            dram = Simulator(
                SystemConfig(
                    arch=arch,
                    dram=DramConfig(
                        enabled=True, channels=1, read_queue_entries=32, write_queue_entries=32
                    ),
                )
            ).run(topo).total_cycles
            gap[dataflow] = dram / ideal
        # WS suffers relatively more from DRAM modelling than OS.
        assert gap["ws"] > gap["os"]


class TestFigure9Shape:
    """Memory throughput scales with channels, then saturates."""

    def _throughput(self, channels):
        dram = RamulatorLite(technology="ddr4", channels=channels)
        cycle = 0
        for line in range(2048):
            dram.submit(line * LINE_BYTES, cycle)
            cycle += 1  # front-end issues one line per cycle
        stats = dram.aggregate_stats()
        return stats.throughput_gbps(dram.timing.tck_ns)

    def test_more_channels_more_throughput(self):
        t1, t2, t4 = (self._throughput(c) for c in (1, 2, 4))
        assert t1 < t2 <= t4 * 1.01

    def test_saturation_when_issue_bound(self):
        # One request per cycle caps useful channels: 8 is barely better
        # than 4 once the front-end is the bottleneck.
        t4, t8 = (self._throughput(c) for c in (4, 8))
        assert t8 <= t4 * 1.5


class TestFigure10Shape:
    """Bigger request queues cut stalls, with diminishing returns."""

    def _total_cycles(self, queue_entries):
        cfg = SystemConfig(
            arch=ArchitectureConfig(array_rows=16, array_cols=16, dataflow="ws"),
            dram=DramConfig(
                enabled=True,
                channels=1,
                read_queue_entries=queue_entries,
                write_queue_entries=queue_entries,
            ),
        )
        return Simulator(cfg).run(get_model("resnet18", scale=16)).total_cycles

    def test_queue_size_ordering(self):
        c32, c128, c512 = (self._total_cycles(q) for q in (32, 128, 512))
        assert c32 >= c128 >= c512

    def test_diminishing_returns(self):
        c32, c128, c512 = (self._total_cycles(q) for q in (32, 128, 512))
        gain_first = c32 - c128
        gain_second = c128 - c512
        assert gain_first >= gain_second


class TestFigure12Shape:
    """More banks (same bandwidth) reduce layout slowdown."""

    def test_bank_sweep_monotone(self):
        layer = get_model("resnet18", scale=8)[1]
        slowdowns = [
            evaluate_layout_slowdown(layer, "ws", 16, 16, banks, 64, max_folds=3).slowdown
            for banks in (1, 2, 4, 8, 16)
        ]
        assert slowdowns[0] >= slowdowns[-1]
        # Overall trend decreasing (allow small non-monotone wiggles).
        assert slowdowns[0] - slowdowns[-1] >= 0


class TestTableVIShape:
    """WS vs IS for ViT: the ratio differs between single- and multi-core."""

    def test_ws_is_ratio_shrinks_with_multicore(self):
        from repro.multicore.multicore_sim import MultiCoreSimulator

        topo = vit_base(scale=2, blocks=1)

        def single(dataflow):
            return sum(
                analytical_runtime(l.to_gemm(), Dataflow.parse(dataflow), 128, 128)
                for l in topo
            )

        def multi(dataflow):
            grid = MultiCoreSimulator.homogeneous(4, 4, 32, 32, dataflow)
            return grid.total_latency(topo)

        single_ratio = single("ws") / single("is")
        multi_ratio = multi("ws") / multi("is")
        # Paper: 1.87x single-core vs 1.14x multi-core — the multi-core
        # grid narrows the gap between the two dataflows.
        assert abs(multi_ratio - 1) < abs(single_ratio - 1)
