"""Unit tests for the .cfg parser and serializer."""

import pytest

from repro.config.parser import (
    load_config,
    parse_config_text,
    save_config,
    serialize_config,
)
from repro.config.presets import available_presets, get_preset
from repro.errors import ConfigError

FULL_CFG = """
[general]
run_name = my_run
output_dir = out

[architecture_presets]
ArrayHeight = 64
ArrayWidth = 16
IfmapSramSzkB = 512
FilterSramSzkB = 128
OfmapSramSzkB = 64
Dataflow = ws
Bandwidth = 20
WordBytes = 2
SimdLanes = 32

[sparsity]
SparsitySupport = true
OptimizedMapping = true
SparseRep = ellpack_block
BlockSize = 8

[memory]
Enabled = true
Technology = hbm
Channels = 4
ReadQueueEntries = 256
WriteQueueEntries = 64

[layout]
Enabled = true
NumBanks = 8
BandwidthPerBank = 8
Evaluator = reference

[energy]
Enabled = true
TechnologyNm = 45
ClockGHz = 0.8

[multicore]
Enabled = true
PartitionsRow = 2
PartitionsCol = 2
PartitionScheme = spatiotemporal_1
NopHops = 0, 1, 1, 2
"""


class TestParseFullConfig:
    def test_general(self):
        cfg = parse_config_text(FULL_CFG)
        assert cfg.run.run_name == "my_run"
        assert cfg.run.output_dir == "out"

    def test_architecture(self):
        arch = parse_config_text(FULL_CFG).arch
        assert (arch.array_rows, arch.array_cols) == (64, 16)
        assert arch.dataflow == "ws"
        assert arch.simd_lanes == 32

    def test_sparsity(self):
        sp = parse_config_text(FULL_CFG).sparsity
        assert sp.sparsity_support and sp.optimized_mapping
        assert sp.block_size == 8

    def test_memory(self):
        dram = parse_config_text(FULL_CFG).dram
        assert dram.enabled
        assert dram.technology == "hbm"
        assert dram.channels == 4
        assert dram.read_queue_entries == 256

    def test_layout(self):
        layout = parse_config_text(FULL_CFG).layout
        assert layout.enabled and layout.num_banks == 8
        assert layout.evaluator == "reference"

    def test_layout_evaluator_defaults_to_vectorized(self):
        assert parse_config_text("[general]\nrun_name = x\n").layout.evaluator == "vectorized"

    def test_energy(self):
        energy = parse_config_text(FULL_CFG).energy
        assert energy.enabled
        assert energy.technology_nm == 45
        assert energy.clock_ghz == pytest.approx(0.8)

    def test_multicore(self):
        mc = parse_config_text(FULL_CFG).multicore
        assert mc.enabled and mc.num_cores == 4
        assert mc.partition_scheme == "spatiotemporal_1"
        assert mc.nop_hops == (0, 1, 1, 2)


class TestDefaultsAndErrors:
    def test_empty_config_gives_defaults(self):
        cfg = parse_config_text("")
        assert cfg.arch.array_rows == 32
        assert not cfg.dram.enabled

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[bogus]\nx = 1\n")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[architecture_presets]\nNotAKnob = 5\n")

    def test_bad_int_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[architecture_presets]\nArrayHeight = many\n")

    def test_bad_bool_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[memory]\nEnabled = maybe\n")

    def test_case_insensitive_keys(self):
        cfg = parse_config_text("[architecture_presets]\narrayheight = 8\n")
        assert cfg.arch.array_rows == 8

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "c.cfg"
        path.write_text(FULL_CFG)
        assert load_config(path).run.run_name == "my_run"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "nope.cfg")


class TestSerializer:
    def test_full_config_round_trips(self):
        config = parse_config_text(FULL_CFG)
        assert parse_config_text(serialize_config(config)) == config

    @pytest.mark.parametrize("preset", available_presets())
    def test_every_preset_round_trips(self, preset):
        config = get_preset(preset)
        assert parse_config_text(serialize_config(config)) == config

    def test_save_and_load(self, tmp_path):
        config = get_preset("simba_like")  # exercises the NopHops tuple
        path = save_config(config, tmp_path / "simba.cfg")
        assert load_config(path) == config

    def test_empty_nop_hops_round_trips(self):
        config = parse_config_text("")
        assert config.multicore.nop_hops == ()
        assert parse_config_text(serialize_config(config)).multicore.nop_hops == ()
