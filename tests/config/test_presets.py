"""Unit tests for the named configuration presets."""

import pytest

from repro.config.presets import available_presets, get_preset
from repro.errors import ConfigError


class TestPresets:
    def test_all_presets_construct(self):
        for name in available_presets():
            cfg = get_preset(name)
            assert cfg.run.run_name

    def test_tpu_preset_matches_paper_section_5c(self):
        cfg = get_preset("google_tpu_v2")
        assert cfg.arch.array_rows == 128
        assert cfg.dram.enabled
        assert cfg.dram.technology == "ddr4"
        assert cfg.dram.speed_mts == 2400
        assert cfg.dram.read_queue_entries == 128
        assert cfg.dram.write_queue_entries == 128

    def test_eyeriss_preset_is_os(self):
        assert get_preset("eyeriss_like").arch.dataflow == "os"

    def test_simba_preset_has_nonuniform_hops(self):
        cfg = get_preset("simba_like")
        assert cfg.multicore.enabled
        assert len(cfg.multicore.nop_hops) == 16
        assert max(cfg.multicore.nop_hops) > min(cfg.multicore.nop_hops)

    def test_v2_default_has_no_v3_features(self):
        cfg = get_preset("scale_sim_v2_default")
        assert not cfg.dram.enabled
        assert not cfg.energy.enabled
        assert not cfg.multicore.enabled

    def test_presets_are_fresh_instances(self):
        assert get_preset("google_tpu_v2") is not get_preset("google_tpu_v2")

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            get_preset("not_a_preset")

    def test_available_sorted(self):
        names = available_presets()
        assert list(names) == sorted(names)
