"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    LayoutConfig,
    MulticoreConfig,
    RunConfig,
    SparsityConfig,
    SystemConfig,
)
from repro.errors import ConfigError


class TestArchitectureConfig:
    def test_defaults_valid(self):
        arch = ArchitectureConfig()
        assert arch.array_rows == 32
        assert arch.dataflow == "os"

    def test_num_pes(self):
        assert ArchitectureConfig(array_rows=8, array_cols=16).num_pes == 128

    def test_sram_words_conversion(self):
        arch = ArchitectureConfig(ifmap_sram_kb=2, word_bytes=2)
        assert arch.ifmap_sram_words() == 1024

    def test_with_array(self):
        arch = ArchitectureConfig().with_array(64, 128)
        assert (arch.array_rows, arch.array_cols) == (64, 128)

    def test_with_dataflow(self):
        assert ArchitectureConfig().with_dataflow("ws").dataflow == "ws"

    @pytest.mark.parametrize("field,value", [
        ("array_rows", 0),
        ("array_cols", -1),
        ("ifmap_sram_kb", 0),
        ("bandwidth_words", 0),
        ("word_bytes", 0),
        ("simd_lanes", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            ArchitectureConfig(**{field: value})

    def test_invalid_dataflow_rejected(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig(dataflow="nope")


class TestSparsityConfig:
    def test_defaults(self):
        cfg = SparsityConfig()
        assert not cfg.sparsity_support
        assert cfg.sparse_representation == "ellpack_block"

    def test_rowwise_requires_support(self):
        with pytest.raises(ConfigError):
            SparsityConfig(sparsity_support=False, optimized_mapping=True)

    def test_rowwise_with_support_ok(self):
        cfg = SparsityConfig(sparsity_support=True, optimized_mapping=True, block_size=8)
        assert cfg.block_size == 8

    def test_bad_representation(self):
        with pytest.raises(ConfigError):
            SparsityConfig(sparse_representation="coo")


class TestDramConfig:
    def test_defaults(self):
        cfg = DramConfig()
        assert cfg.technology == "ddr4"
        assert cfg.read_queue_entries == 128

    def test_bad_technology(self):
        with pytest.raises(ConfigError):
            DramConfig(technology="ddr9")

    @pytest.mark.parametrize("field", ["channels", "read_queue_entries", "write_queue_entries"])
    def test_positive_required(self, field):
        with pytest.raises(ConfigError):
            DramConfig(**{field: 0})


class TestLayoutConfig:
    def test_total_bandwidth(self):
        cfg = LayoutConfig(num_banks=4, bandwidth_per_bank_words=16)
        assert cfg.total_bandwidth_words == 64

    def test_bad_banks(self):
        with pytest.raises(ConfigError):
            LayoutConfig(num_banks=0)

    def test_evaluator_validated(self):
        assert LayoutConfig().evaluator == "vectorized"
        assert LayoutConfig(evaluator="reference").evaluator == "reference"
        with pytest.raises(ConfigError):
            LayoutConfig(evaluator="turbo")


class TestEnergyConfig:
    def test_defaults(self):
        cfg = EnergyConfig()
        assert cfg.technology_nm == 65
        assert not cfg.clock_gating

    def test_bad_clock(self):
        with pytest.raises(ConfigError):
            EnergyConfig(clock_ghz=0)


class TestMulticoreConfig:
    def test_num_cores(self):
        assert MulticoreConfig(partitions_row=4, partitions_col=2).num_cores == 8

    def test_nop_hops_length_checked(self):
        with pytest.raises(ConfigError):
            MulticoreConfig(partitions_row=2, partitions_col=2, nop_hops=(1, 2))

    def test_nop_hops_valid(self):
        cfg = MulticoreConfig(partitions_row=2, partitions_col=2, nop_hops=(0, 1, 1, 2))
        assert cfg.nop_hops == (0, 1, 1, 2)

    def test_bad_scheme(self):
        with pytest.raises(ConfigError):
            MulticoreConfig(partition_scheme="diagonal")


class TestSystemConfig:
    def test_defaults_compose(self):
        cfg = SystemConfig()
        assert not cfg.dram.enabled
        assert not cfg.energy.enabled
        assert cfg.run.run_name

    def test_replace_section(self):
        cfg = SystemConfig().replace(run=RunConfig(run_name="other"))
        assert cfg.run.run_name == "other"
        assert cfg.arch.array_rows == 32
