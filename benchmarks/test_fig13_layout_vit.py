"""Figure 13: layout slowdown vs (bandwidth, banks) — ViT.

Same sweep as Figure 12 on a ViT GEMM layer.  Reproduced claims: bank
scaling reduces slowdown, and the IS dataflow (whose preload reads
whole rows) barely deviates from the flat-BW model while the skewed
dual-stream dataflows suffer visible conflicts.

Runs at the paper's scale: the unscaled ViT-base ff1 GEMM on a 128x128
array with full-layer traces, via the vectorized bank-conflict
evaluator — each dataflow's whole grid riding one streaming trace pass
through ``evaluate_layout_slowdown_many``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.layout.integrate import LayoutEvalConfig, evaluate_layout_slowdown_many
from repro.topology.models import vit_base

pytestmark = pytest.mark.slow

BANDWIDTHS = (64, 128, 256, 512, 1024)
BANKS = (1, 2, 4, 8, 16)
ARRAY = 128  # the paper's array size
SCALE = 1  # full-size layer
MAX_FOLDS = None  # full-layer traces

GRID = [
    LayoutEvalConfig(num_banks=banks, total_bandwidth_words=bw)
    for bw in BANDWIDTHS
    for banks in BANKS
]


def _sweep():
    layer = vit_base(scale=SCALE, blocks=1).layer_named("block0_ff1")
    table = {}
    for dataflow in ("is", "ws", "os"):
        results = evaluate_layout_slowdown_many(
            layer,
            dataflow,
            ARRAY,
            ARRAY,
            GRID,
            max_folds=MAX_FOLDS,
            workers=SWEEP_WORKERS,
        )
        for config, result in zip(GRID, results):
            table[(dataflow, config.total_bandwidth_words, config.num_banks)] = (
                result.slowdown
            )
    return table


def test_fig13_layout_vit(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [df, bw, banks, f"{slow:+.4f}"] for (df, bw, banks), slow in table.items()
    ]
    emit_table(
        f"Figure 13 — layout slowdown vs BW model (ViT-base ff1, {ARRAY}x{ARRAY}, full layer)",
        ["dataflow", "bandwidth", "banks", "slowdown"],
        rows,
        results_dir / "fig13_layout_vit.csv",
    )

    for dataflow in ("is", "ws", "os"):
        for bw in BANDWIDTHS:
            assert table[(dataflow, bw, 1)] >= table[(dataflow, bw, 16)] - 1e-9

    # Per-dataflow shape, as in the paper's three panels: IS barely
    # deviates from the flat-BW model (its preload reads whole rows),
    # while OS — with its diagonally skewed dual streams — is the worst.
    worst_is = max(abs(table[("is", bw, banks)]) for bw in BANDWIDTHS for banks in BANKS)
    worst_os = max(table[("os", bw, banks)] for bw in BANDWIDTHS for banks in BANKS)
    worst_ws = max(table[("ws", bw, banks)] for bw in BANDWIDTHS for banks in BANKS)
    print(f"worst |IS|={worst_is:.3f}  worst WS={worst_ws:.3f}  worst OS={worst_os:.3f}")
    assert worst_is < 0.5
    assert worst_os >= worst_ws >= worst_is
