"""Figure 3: compute-cycles vs memory-footprint trade-off.

Sweep: GEMM dims M, N, K in {1000, 5000, 10000} (27 workloads), array
sizes {8, 16, 32} squared, scale-out core counts {16, 32, 64}.  For each
configuration the best (Pr, Pc) of each scheme is chosen under a
compute-cycles objective (Fig. 3a) and a memory-footprint objective
(Fig. 3b).  Reproduced claim: spatio-temporal partitioning wins a
meaningful share of compute-optimised points (smaller footprint at equal
or better cycles), while spatial wins most footprint-optimised points.
"""

from __future__ import annotations

import itertools

from benchmarks.conftest import emit_table
from repro.core.dataflow import Dataflow
from repro.multicore.partition import PartitionScheme, partition_tradeoff
from repro.topology.layer import GemmShape

DIMS = (1000, 5000, 10000)
ARRAYS = (8, 16, 32)
CORES = (16, 32, 64)


def _sweep(objective: str):
    rows = []
    wins = {scheme: 0 for scheme in PartitionScheme}
    for (m, n, k), array, cores in itertools.product(
        itertools.product(DIMS, DIMS, DIMS), ARRAYS, CORES
    ):
        shape = GemmShape(m=m, n=n, k=k)
        tradeoff = partition_tradeoff(
            shape, Dataflow.OUTPUT_STATIONARY, array, array, cores, objective=objective
        )
        if objective == "cycles":
            # Among equal-cycle bests, the winner has the least footprint
            # (the paper's "best partition" marker in Fig. 3a).
            best_scheme = min(
                tradeoff, key=lambda s: (tradeoff[s].runtime_cycles, tradeoff[s].l1_footprint)
            )
        else:
            best_scheme = min(
                tradeoff, key=lambda s: (tradeoff[s].l1_footprint, tradeoff[s].runtime_cycles)
            )
        wins[best_scheme] += 1
        spatial = tradeoff[PartitionScheme.SPATIAL]
        st1 = tradeoff[PartitionScheme.SPATIOTEMPORAL_1]
        st2 = tradeoff[PartitionScheme.SPATIOTEMPORAL_2]
        rows.append(
            [
                f"{m}x{n}x{k}",
                array,
                cores,
                spatial.runtime_cycles,
                spatial.l1_footprint,
                st1.runtime_cycles,
                st1.l1_footprint,
                st2.runtime_cycles,
                st2.l1_footprint,
                best_scheme.value,
            ]
        )
    return rows, wins


def test_fig3a_compute_optimized(benchmark, results_dir):
    rows, wins = benchmark.pedantic(_sweep, args=("cycles",), rounds=1, iterations=1)
    emit_table(
        "Figure 3a — compute-optimised best partitions (243 configs)",
        [
            "GEMM",
            "array",
            "cores",
            "spatial_cycles",
            "spatial_fp",
            "st1_cycles",
            "st1_fp",
            "st2_cycles",
            "st2_fp",
            "best",
        ],
        rows,
        results_dir / "fig03a_partitioning.csv",
    )
    st_wins = wins[PartitionScheme.SPATIOTEMPORAL_1] + wins[PartitionScheme.SPATIOTEMPORAL_2]
    print(f"wins: {({s.value: w for s, w in wins.items()})}")
    # Paper: "multiple examples where spatiotemporal outperforms spatial".
    assert st_wins > 0


def test_fig3b_memory_optimized(benchmark, results_dir):
    rows, wins = benchmark.pedantic(_sweep, args=("footprint",), rounds=1, iterations=1)
    emit_table(
        "Figure 3b — footprint-optimised best partitions (243 configs)",
        [
            "GEMM",
            "array",
            "cores",
            "spatial_cycles",
            "spatial_fp",
            "st1_cycles",
            "st1_fp",
            "st2_cycles",
            "st2_fp",
            "best",
        ],
        rows,
        results_dir / "fig03b_partitioning.csv",
    )
    print(f"wins: {({s.value: w for s, w in wins.items()})}")
    # Paper: "in Figure 3b, spatial partitioning outperforms in most cases".
    assert wins[PartitionScheme.SPATIAL] > len(rows) / 2
