"""Table VI: WS vs IS, single 128x128 core vs 16 cores of 32x32.

Iso-compute comparison on ViT-base.  Reproduced claims:

* the WS/IS latency contrast is large on the single core (paper 1.87x)
  and much smaller on the multi-core grid (paper 1.14x),
* the WS/IS energy ratio stays ~constant across the two designs (paper
  0.71 vs 0.70) — energy follows action counts, not the partitioning.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.energy.accelergy import AccelergyLite
from repro.multicore.multicore_sim import MultiCoreSimulator
from repro.topology.models import vit_base

TOPOLOGY = vit_base(scale=1, blocks=1)


def _single_core(dataflow: str):
    arch = ArchitectureConfig(
        array_rows=128, array_cols=128, dataflow=dataflow,
        ifmap_sram_kb=1024, filter_sram_kb=1024, ofmap_sram_kb=1024,
        bandwidth_words=200,
    )
    energy = EnergyConfig(enabled=True)
    run = Simulator(SystemConfig(arch=arch, energy=energy)).run(TOPOLOGY)
    report = AccelergyLite(arch, energy).estimate_run(run)
    return run.total_cycles, report.total_mj


def _multi_core(dataflow: str):
    grid = MultiCoreSimulator.homogeneous(4, 4, 32, 32, dataflow)
    latency = grid.total_latency(TOPOLOGY)
    # Energy: 16 cores' action counts approximated by 16 single-core
    # sub-problems on the per-core 32x32 ERT.
    arch = ArchitectureConfig(array_rows=32, array_cols=32, dataflow=dataflow,
                              bandwidth_words=200)
    energy = EnergyConfig(enabled=True)
    engine = AccelergyLite(arch, energy)
    total_mj = 0.0
    for result in grid.simulate_topology(TOPOLOGY):
        for core in result.cores:
            # Leakage over the core's busy window + dynamic via MACs.
            cycles = core.compute_cycles
            total_mj += engine.ert.total_leakage_pj(cycles) * 1e-9
            total_mj += engine.ert.energy_pj("mac", "mac_random", core.compute.macs) * 1e-9
            idle = max(0, 32 * 32 * cycles - core.compute.macs)
            total_mj += engine.ert.energy_pj("mac", "mac_constant", idle) * 1e-9
    return latency, total_mj


def _compare():
    single = {df: _single_core(df) for df in ("ws", "is")}
    multi = {df: _multi_core(df) for df in ("ws", "is")}
    return single, multi


def test_tab6_multicore_dataflow(benchmark, results_dir):
    single, multi = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lat_ratio_single = single["ws"][0] / single["is"][0]
    lat_ratio_multi = multi["ws"][0] / multi["is"][0]
    eng_ratio_single = single["ws"][1] / single["is"][1]
    eng_ratio_multi = multi["ws"][1] / multi["is"][1]
    rows = [
        ["latency ws/is", f"{lat_ratio_single:.2f}", f"{lat_ratio_multi:.2f}"],
        ["energy ws/is", f"{eng_ratio_single:.2f}", f"{eng_ratio_multi:.2f}"],
    ]
    emit_table(
        "Table VI — WS/IS ratios: single 128x128 vs 16 x 32x32 (ViT-base)",
        ["ratio", "single_core", "16_cores"],
        rows,
        results_dir / "tab06_multicore_dataflow.csv",
    )

    # The dataflow latency contrast shrinks on the multi-core design.
    assert abs(lat_ratio_multi - 1) < abs(lat_ratio_single - 1)
    # Energy ratios stay close across designs (paper: 0.71 vs 0.70).
    assert abs(eng_ratio_single - eng_ratio_multi) < 0.3
