"""The perf-trajectory aggregator stays in sync with the baselines."""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.perf.trajectory import (
    PERF_DIR,
    build_markdown,
    build_trajectory,
    write_markdown,
    write_trajectory,
)


def test_every_committed_bench_is_aggregated():
    trajectory = build_trajectory()
    bench_files = {path.name for path in PERF_DIR.glob("BENCH_*.json")}
    aggregated = {bench["file"] for bench in trajectory["benches"].values()}
    assert aggregated == bench_files
    assert bench_files, "no committed BENCH_*.json baselines found"


def test_known_seams_report_speedups():
    benches = build_trajectory()["benches"]
    for seam in ("memory_datapath", "layout_conflict", "layout_fanout", "dram_fanout"):
        assert seam in benches, f"missing perf baseline for {seam}"
        assert benches[seam]["speedups"], f"{seam} baseline carries no speedups"


def test_write_is_deterministic(tmp_path):
    first = write_trajectory(out_path=tmp_path / "a.json")
    second = write_trajectory(out_path=tmp_path / "b.json")
    assert first.read_bytes() == second.read_bytes()


def test_markdown_is_deterministic_and_covers_benches(tmp_path):
    first = write_markdown(out_path=tmp_path / "a.md")
    second = write_markdown(out_path=tmp_path / "b.md")
    assert first.read_bytes() == second.read_bytes()
    text = first.read_text()
    for name in build_trajectory()["benches"]:
        assert f"| {name} |" in text


def test_committed_markdown_covers_baselines():
    """TRAJECTORY.md is committed and names every bench seam.

    Values drift run to run (like TRAJECTORY.json), so only the seam
    coverage is pinned.
    """
    committed_path = PERF_DIR / "TRAJECTORY.md"
    assert committed_path.exists(), (
        "run benchmarks/perf/trajectory.py --markdown and commit"
    )
    text = committed_path.read_text()
    for name in build_trajectory()["benches"]:
        assert f"| {name} |" in text, name


def test_gates_are_folded_into_trajectory():
    """Every harness gate constant lands in the trajectory's gates map."""
    benches = build_trajectory()["benches"]
    dram_gates = benches["dram_fanout"]["gates"]
    assert "dram_grid.required_speedup" in dram_gates
    assert "cross_grid.required_speedup" in dram_gates
    assert dram_gates["dram_grid.required_speedup"] >= 2.0


def test_gate_bumps_are_monotonic():
    """A committed gate can only move upward.

    The committed TRAJECTORY.json records each harness's
    ``required_*`` floors; a regenerated trajectory whose gate is
    *below* the committed one means a gate was silently relaxed —
    exactly the regression this assertion exists to catch.  (New gates
    may appear; existing ones may rise.)
    """
    committed_path = PERF_DIR / "TRAJECTORY.json"
    assert committed_path.exists(), "run benchmarks/perf/trajectory.py and commit"
    committed = json.loads(committed_path.read_text())
    fresh = build_trajectory()
    for name, bench in fresh["benches"].items():
        committed_gates = committed["benches"].get(name, {}).get("gates", {})
        for key, floor in committed_gates.items():
            current = bench["gates"].get(key)
            assert current is not None, (
                f"{name}.{key}: gate removed (committed floor {floor})"
            )
            assert current >= floor, (
                f"{name}.{key}: gate regressed {floor} -> {current}"
            )


def test_committed_trajectory_covers_baselines():
    """TRAJECTORY.json is committed and structurally current.

    Values drift run to run (the perf harnesses rewrite their BENCH
    files with fresh timings before this test executes), so only the
    bench set and speedup keys are pinned — a new or removed baseline
    must be re-aggregated and committed.
    """
    committed_path = PERF_DIR / "TRAJECTORY.json"
    assert committed_path.exists(), "run benchmarks/perf/trajectory.py and commit"
    committed = json.loads(committed_path.read_text())
    fresh = build_trajectory()
    assert set(committed["benches"]) == set(fresh["benches"])
    for name, bench in fresh["benches"].items():
        assert set(committed["benches"][name]["speedups"]) == set(bench["speedups"]), name
