"""Perf harness for the memory datapath: resnet18 through DRAM.

Times the full DRAM-enabled ResNet-18 run under both memory engines and
writes ``BENCH_memory_datapath.json`` (seconds, lines/sec, speedup) so
the datapath's performance trajectory is tracked across PRs.  The
batched engine must stay >= 5x faster than the scalar reference — the
speedup the engine refactor shipped with.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.topology.models import resnet18

BENCH_PATH = Path(__file__).parent / "BENCH_memory_datapath.json"

#: The paper's ws-dataflow ResNet-18 with the default DDR4 single-channel
#: DRAM — the configuration whose line loop dominated simulator wall time.
BASE_CONFIG = SystemConfig(
    arch=ArchitectureConfig(dataflow="ws"),
    dram=DramConfig(enabled=True),
)


def _timed_run(engine: str, repeats: int = 2) -> tuple[float, int, int]:
    """Run resnet18 ``repeats`` times; returns (best seconds, cycles, lines).

    Best-of-N damps scheduler noise on shared CI runners — the
    measurement of interest is each engine's floor, not its jitter.
    """
    config = BASE_CONFIG.replace(
        dram=dataclasses.replace(BASE_CONFIG.dram, engine=engine)
    )
    topology = resnet18()
    best = float("inf")
    for _ in range(repeats):
        simulator = Simulator(config)
        start = time.perf_counter()
        result = simulator.run(topology)
        best = min(best, time.perf_counter() - start)
    stats = result.dram_stats
    assert stats is not None
    return best, result.total_cycles, stats.requests


@pytest.mark.slow
def test_memory_datapath_speedup():
    batched_s, batched_cycles, lines = _timed_run("batched")
    reference_s, reference_cycles, reference_lines = _timed_run("reference")

    # The engines must agree bit for bit before the timing means anything.
    assert batched_cycles == reference_cycles
    assert lines == reference_lines

    speedup = reference_s / batched_s
    payload = {
        "workload": "resnet18 (ws dataflow, DDR4 x1, queues 128/128)",
        "total_lines": lines,
        "reference_seconds": round(reference_s, 3),
        "batched_seconds": round(batched_s, 3),
        "reference_lines_per_sec": round(lines / reference_s),
        "batched_lines_per_sec": round(lines / batched_s),
        "speedup": round(speedup, 2),
        "total_cycles": batched_cycles,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nmemory datapath: {json.dumps(payload, indent=2)}")

    assert speedup >= 5.0, (
        f"batched engine regressed: only {speedup:.2f}x faster than reference "
        f"({batched_s:.2f}s vs {reference_s:.2f}s)"
    )
