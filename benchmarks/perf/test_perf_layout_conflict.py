"""Perf harness for the layout-conflict evaluator: fig12 at paper scale.

Times both bank-conflict evaluators consuming the same pre-generated
demand trace — the unscaled ResNet-18 conv2_1a layer (the Figure 12
workload) on the paper's 128x128 array, ws dataflow, at the figure's
single-bank anchor point (1 bank x 64 words/cycle, where the paper's
conflicts are worst) — and writes ``BENCH_layout_conflict.json``
(seconds, cycles/s, speedup) so the layout pipeline's performance
trajectory is tracked across PRs.  The vectorized evaluator must stay
>= 20x faster than the scalar reference — the speedup that lifted
Figures 12/13 from a 32x32 / 3-fold compromise to full-layer traces at
the paper's array size.

Traces are generated once outside the timed region: the harness
measures evaluator throughput, not trace generation (which both
evaluators share).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.dataflow import Dataflow
from repro.core.operand_matrix import IFMAP_BASE, operand_matrices
from repro.core.systolic import TraceEngine
from repro.layout.conflict import make_conflict_evaluator
from repro.layout.spec import LayoutSpec, TensorView
from repro.topology.models import resnet18

BENCH_PATH = Path(__file__).parent / "BENCH_layout_conflict.json"

ARRAY = 128
NUM_BANKS = 1
BANDWIDTH = 64


def _fig12_workload():
    """The fig12 anchor point: conv2_1a ifmap demand, full layer."""
    layer = resnet18(scale=1).layer_named("conv2_1a")
    view = TensorView(c_dim=layer.channels, h_dim=layer.ifmap_h, w_dim=layer.ifmap_w)
    layout = LayoutSpec.default_for(
        view, num_banks=NUM_BANKS, bandwidth_per_bank=BANDWIDTH // NUM_BANKS
    )
    engine = TraceEngine(
        operand_matrices(layer), Dataflow.WEIGHT_STATIONARY, ARRAY, ARRAY
    )
    # ws streams the ifmap through the row ports only.
    matrices = [fold.row_port_demand for fold in engine.fold_traces()]
    return layout, matrices


def _timed_run(name: str, layout, matrices, repeats: int) -> tuple[float, object]:
    """Best-of-N consumption of the whole trace by a fresh evaluator."""
    best = float("inf")
    evaluator = None
    for _ in range(repeats):
        evaluator = make_conflict_evaluator(name, layout, bandwidth_model_words=BANDWIDTH)
        start = time.perf_counter()
        for matrix in matrices:
            evaluator.add_demand_matrix(matrix, base_offset=IFMAP_BASE)
        best = min(best, time.perf_counter() - start)
    return best, evaluator


@pytest.mark.slow
def test_layout_conflict_speedup():
    layout, matrices = _fig12_workload()
    vectorized_s, vectorized = _timed_run("vectorized", layout, matrices, repeats=3)
    reference_s, reference = _timed_run("reference", layout, matrices, repeats=1)

    # The evaluators must agree bit for bit before the timing means anything.
    assert reference.total_layout_cycles == vectorized.total_layout_cycles
    assert reference.total_bandwidth_cycles == vectorized.total_bandwidth_cycles
    assert reference.total_requests == vectorized.total_requests
    assert reference.cycles_evaluated == vectorized.cycles_evaluated

    cycles = reference.cycles_evaluated
    speedup = reference_s / vectorized_s
    payload = {
        "workload": (
            f"resnet18 conv2_1a ifmap (ws dataflow, {ARRAY}x{ARRAY} array, "
            f"{NUM_BANKS} bank x {BANDWIDTH} words/cycle, full layer)"
        ),
        "cycles_evaluated": cycles,
        "total_requests": reference.total_requests,
        "reference_seconds": round(reference_s, 3),
        "vectorized_seconds": round(vectorized_s, 3),
        "reference_cycles_per_sec": round(cycles / reference_s),
        "vectorized_cycles_per_sec": round(cycles / vectorized_s),
        "speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nlayout conflict: {json.dumps(payload, indent=2)}")

    assert speedup >= 20.0, (
        f"vectorized evaluator regressed: only {speedup:.1f}x faster than "
        f"reference ({vectorized_s:.2f}s vs {reference_s:.2f}s)"
    )
