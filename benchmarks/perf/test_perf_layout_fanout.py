"""Perf harness for the trace fan-out: the fig12 grid in one pass.

Times the full Figure 12 weight-stationary grid — 5 on-chip bandwidths
x 5 bank counts on the unscaled ResNet-18 conv2_1a layer, full-layer
traces at the paper's 128x128 array — two ways:

* **independent**: 25 separate ``evaluate_layout_slowdown`` calls, each
  regenerating operand matrices, fold traces, masking and the per-fold
  (cycle, offset) sort/dedup (what the fig12 benchmark did before the
  fan-out landed);
* **fan-out**: one ``evaluate_layout_slowdown_many`` call that streams
  the trace once, shares the per-fold ``FoldDemand`` artifacts and the
  per-signature (line, col) decodes across all 25 configurations, and
  fans the per-configuration stack-distance cascades over
  ``SWEEP_WORKERS`` processes.

Writes ``BENCH_layout_fanout.json`` (seconds, speedup, workers) so the
layout pipeline's perf trajectory is tracked across PRs.

The speedup gate scales with the worker pool: the serial floor
(single-core CI) isolates the shared-upstream win alone — the
per-config LRU cascade dominates a serial grid, bounding what sharing
can save — while the >= 4x contract holds from 4 workers up, where the
fan-out both shares the upstream pass and spreads the cascades.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import SWEEP_WORKERS
from repro.layout.integrate import (
    LayoutEvalConfig,
    evaluate_layout_slowdown,
    evaluate_layout_slowdown_many,
)
from repro.topology.models import resnet18

BENCH_PATH = Path(__file__).parent / "BENCH_layout_fanout.json"

ARRAY = 128
BANDWIDTHS = (64, 128, 256, 512, 1024)
BANKS = (1, 2, 4, 8, 16)

GRID = [
    LayoutEvalConfig(num_banks=banks, total_bandwidth_words=bw)
    for bw in BANDWIDTHS
    for banks in BANKS
]

#: Required fan-out speedup by pool size (see module docstring).
MIN_SPEEDUP = {1: 1.35, 2: 2.2, 3: 3.0}
MIN_SPEEDUP_PARALLEL = 4.0  # 4+ workers: the fan-out contract


@pytest.mark.slow
def test_layout_fanout_speedup():
    layer = resnet18(scale=1).layer_named("conv2_1a")

    fanout_s = float("inf")
    fanout = None
    for _ in range(2):
        start = time.perf_counter()
        fanout = evaluate_layout_slowdown_many(
            layer, "ws", ARRAY, ARRAY, GRID, workers=SWEEP_WORKERS
        )
        fanout_s = min(fanout_s, time.perf_counter() - start)

    start = time.perf_counter()
    independent = [
        evaluate_layout_slowdown(
            layer, "ws", ARRAY, ARRAY, cfg.num_banks, cfg.total_bandwidth_words
        )
        for cfg in GRID
    ]
    independent_s = time.perf_counter() - start

    # The paths must agree bit for bit before the timing means anything.
    assert fanout == independent

    speedup = independent_s / fanout_s
    required = MIN_SPEEDUP.get(SWEEP_WORKERS, MIN_SPEEDUP_PARALLEL)
    payload = {
        "workload": (
            f"fig12 ws grid: resnet18 conv2_1a ifmap, {ARRAY}x{ARRAY} array, "
            f"{len(BANDWIDTHS)} bandwidths x {len(BANKS)} bank counts, full layer"
        ),
        "grid_points": len(GRID),
        "workers": SWEEP_WORKERS,
        "independent_seconds": round(independent_s, 3),
        "fanout_seconds": round(fanout_s, 3),
        "speedup": round(speedup, 2),
        "required_speedup": required,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nlayout fanout: {json.dumps(payload, indent=2)}")

    assert speedup >= required, (
        f"trace fan-out regressed: only {speedup:.2f}x faster than "
        f"{len(GRID)} independent calls with {SWEEP_WORKERS} workers "
        f"({fanout_s:.2f}s vs {independent_s:.2f}s, need >= {required}x)"
    )
