"""Perf harness for the DRAM fan-out: one compute plan, a ``dram.*`` grid.

Two gated measurements on full-scale (unscaled) ResNet-18 layers at the
paper's 128x128 weight-stationary array:

* **dram_grid** — the fig9 shape: one topology, DDR4, channels swept
  1/2/4/8.  Baseline is four independent ``Simulator.run`` calls from a
  cold plan cache (what every ``dram.*`` sweep point cost before the
  fan-out); the fan-out builds one plan, shares one decoded line stream
  and resolves all four stall walks in one config-batched
  :class:`~repro.dram.engine_grid.GridBatchedEngine` pass per line
  batch (``simulate_many_dram``).  Batching the config axis amortizes
  the per-iteration dispatch overhead the per-config engine pays four
  times over, so the >= 2x contract holds already at one worker.
* **cross_grid** — the grouped-sweep contract this PR adds: a
  (``dram.channels`` x ``layout.num_banks``) cross on one full conv
  layer.  Independent points each re-run the dense walk *and* the
  full trace + cascade; the grouped unit resolves the cross as
  #channels stall walks + one trace stream + #banks cascades.  The
  dedup is a genuine serial >= 2x on one core.

Writes ``BENCH_dram_fanout.json`` (seconds, speedups, workers), folded
into ``TRAJECTORY.json`` like every seam baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import SWEEP_WORKERS
from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    LayoutConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.simulator import Simulator, clear_compute_plan_cache
from repro.dram.fanout import simulate_many_dram
from repro.run.sweep import Axis, SweepRunner, SweepSpec, _simulate_point
from repro.topology.models import resnet18
from repro.topology.topology import Topology

BENCH_PATH = Path(__file__).parent / "BENCH_dram_fanout.json"

ARRAY = 128
CHANNELS = (1, 2, 4, 8)
FIG9_LAYERS = ("conv1", "conv2_1a", "conv3_1b", "conv4_1b", "conv5_1b", "fc")
CROSS_CHANNELS = (1, 2, 4)
CROSS_BANKS = (1, 2, 4, 8, 16)

ARCH = ArchitectureConfig(
    array_rows=ARRAY,
    array_cols=ARRAY,
    dataflow="ws",
    ifmap_sram_kb=1024,
    filter_sram_kb=1024,
    ofmap_sram_kb=1024,
)

#: dram_grid gates by pool size: the config-batched grid pass makes the
#: serial floor itself >= 2x (one vectorized stall walk for the whole
#: grid); workers spread grid groups without lowering that floor.
MIN_DRAM_SPEEDUP = {1: 2.0, 2: 2.0, 3: 2.0}
MIN_DRAM_SPEEDUP_PARALLEL = 2.0
#: cross_grid gates: the dedup (channels x banks -> channels + banks)
#: is a serial win; workers add the fan on top.
MIN_CROSS_SPEEDUP = {1: 2.0, 2: 2.3, 3: 2.6}
MIN_CROSS_SPEEDUP_PARALLEL = 3.0


def _dram_config(channels: int) -> SystemConfig:
    return SystemConfig(
        arch=ARCH,
        dram=DramConfig(enabled=True, technology="ddr4", channels=channels),
        run=RunConfig(run_name=f"fanout_ch{channels}"),
    )


@pytest.mark.slow
def test_dram_fanout_speedup():
    topology = resnet18(scale=1).subset(list(FIG9_LAYERS))
    configs = [_dram_config(channels) for channels in CHANNELS]

    # --- dram_grid: independent serial points (cold plan cache each,
    # the pre-fan-out per-point cost) vs the shared-plan fan-out.
    start = time.perf_counter()
    independent = []
    for config in configs:
        clear_compute_plan_cache()
        independent.append(Simulator(config).run(topology))
    independent_s = time.perf_counter() - start

    fanout_s = float("inf")
    fanout = None
    for _ in range(2):
        clear_compute_plan_cache()
        start = time.perf_counter()
        plan = Simulator(configs[0]).plan(topology)
        fanout = simulate_many_dram(plan, configs, workers=SWEEP_WORKERS)
        fanout_s = min(fanout_s, time.perf_counter() - start)

    # The paths must agree bit for bit before the timing means anything.
    assert fanout == independent

    dram_speedup = independent_s / fanout_s
    dram_required = MIN_DRAM_SPEEDUP.get(SWEEP_WORKERS, MIN_DRAM_SPEEDUP_PARALLEL)

    # --- cross_grid: the grouped sweep unit vs independent points.
    layer = resnet18(scale=1).layer_named("conv2_1a")
    cross_topology = Topology("conv2_1a", [layer])
    base = SystemConfig(
        arch=ARCH,
        dram=DramConfig(enabled=True, technology="ddr4"),
        layout=LayoutConfig(enabled=True, num_banks=1, bandwidth_per_bank_words=64),
        run=RunConfig(run_name="cross"),
    )
    spec = SweepSpec(
        base=base,
        axes=[
            Axis("dram.channels", CROSS_CHANNELS),
            Axis("layout.num_banks", CROSS_BANKS),
        ],
        topologies=[cross_topology],
        name="cross",
    )
    points = spec.expand()

    start = time.perf_counter()
    solo_payloads = []
    for point in points:
        clear_compute_plan_cache()
        solo_payloads.append(_simulate_point((point.config, point.topology, True)))
    cross_independent_s = time.perf_counter() - start

    clear_compute_plan_cache()
    runner = SweepRunner(workers=SWEEP_WORKERS)
    start = time.perf_counter()
    grouped = runner.run(spec)
    cross_grouped_s = time.perf_counter() - start
    assert runner.last_grouping == (len(points), 1)

    for result, solo in zip(grouped, solo_payloads):
        assert result.run_result.total_cycles == solo.run_result.total_cycles
        assert result.run_result.dram_stats == solo.run_result.dram_stats
        assert result.layout_results == solo.layout_results

    cross_speedup = cross_independent_s / cross_grouped_s
    cross_required = MIN_CROSS_SPEEDUP.get(SWEEP_WORKERS, MIN_CROSS_SPEEDUP_PARALLEL)

    payload = {
        "workload": (
            f"resnet18 full layers, {ARRAY}x{ARRAY} ws array, DDR4: "
            f"fig9 channel grid ({len(CHANNELS)} configs x "
            f"{len(FIG9_LAYERS)} layers) + channels x banks cross "
            f"({len(CROSS_CHANNELS)}x{len(CROSS_BANKS)} on conv2_1a)"
        ),
        "workers": SWEEP_WORKERS,
        "dram_grid": {
            "grid_points": len(CHANNELS),
            "independent_seconds": round(independent_s, 3),
            "fanout_seconds": round(fanout_s, 3),
            "speedup": round(dram_speedup, 2),
            "required_speedup": dram_required,
        },
        "cross_grid": {
            "grid_points": len(points),
            "independent_seconds": round(cross_independent_s, 3),
            "grouped_seconds": round(cross_grouped_s, 3),
            "speedup": round(cross_speedup, 2),
            "required_speedup": cross_required,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\ndram fanout: {json.dumps(payload, indent=2)}")

    assert dram_speedup >= dram_required, (
        f"dram fan-out regressed: only {dram_speedup:.2f}x faster than "
        f"{len(CHANNELS)} independent serial points with {SWEEP_WORKERS} "
        f"workers ({fanout_s:.2f}s vs {independent_s:.2f}s, "
        f"need >= {dram_required}x)"
    )
    assert cross_speedup >= cross_required, (
        f"grouped cross sweep regressed: only {cross_speedup:.2f}x faster "
        f"than {len(points)} independent points with {SWEEP_WORKERS} workers "
        f"({cross_grouped_s:.2f}s vs {cross_independent_s:.2f}s, "
        f"need >= {cross_required}x)"
    )
