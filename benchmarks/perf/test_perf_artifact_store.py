"""Perf harness for the artifact store: cold build vs warm reload.

One gated measurement on a full-scale (unscaled) ResNet-18 conv layer
at the paper's 128x128 weight-stationary array — the fig12/13 shape:
DRAM enabled (DDR4) and the layout study on.  A sweep point at this
scale splits into:

* shared upstream work the store persists — the compute schedule
  (fold specs + fetch plans), the layer's fold-demand stream (trace
  generation + the per-fold (cycle, offset) sort) and the decoded
  DRAM line stream (fetch-to-64B-line chop + issue-order sort);
* per-config work it cannot skip — the DRAM stall walk, the layout
  cascade, the energy model.

The cold run populates an empty store; the warm runs reload every
artifact from disk with the in-process plan LRU cleared in between
(simulating a fresh process).  The gate asserts the warm run is
>= 1.5x faster — the contract that unpickling the mid-level artifacts
beats rebuilding them, which is what makes a shared store directory
worth wiring into long sweep campaigns.

Writes ``BENCH_artifact_store.json``, folded into ``TRAJECTORY.json``
like every seam baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    LayoutConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.simulator import clear_compute_plan_cache
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.store.artifact_store import ArtifactStore
from repro.topology.models import resnet18
from repro.topology.topology import Topology

BENCH_PATH = Path(__file__).parent / "BENCH_artifact_store.json"

ARRAY = 128
LAYER = "conv2_1a"

#: Warm-over-cold contract: reloading the persisted compute schedule,
#: fold-demand stream and decoded line stream must beat rebuilding them
#: by >= 1.5x even though the stall walk / cascade / energy run anew.
MIN_WARM_SPEEDUP = 1.5


def _spec() -> SweepSpec:
    base = SystemConfig(
        arch=ArchitectureConfig(
            array_rows=ARRAY,
            array_cols=ARRAY,
            dataflow="ws",
            ifmap_sram_kb=1024,
            filter_sram_kb=1024,
            ofmap_sram_kb=1024,
        ),
        dram=DramConfig(enabled=True, technology="ddr4", channels=2),
        layout=LayoutConfig(enabled=True, num_banks=4, bandwidth_per_bank_words=16),
        run=RunConfig(run_name="store_bench"),
    )
    layer = resnet18(scale=1).layer_named(LAYER)
    # The channels axis turns the unit into a DRAM fan-out group, so all
    # three artifact kinds flow through the store: the compute schedule,
    # the fold-demand stream and the decoded line stream.
    return SweepSpec(
        base=base,
        axes=[Axis("dram.channels", (1, 2))],
        topologies=[Topology(LAYER, [layer])],
        name="store_bench",
    )


def _run_once(store: ArtifactStore) -> tuple[float, list[int]]:
    """One fresh-process-equivalent sweep through the store."""
    clear_compute_plan_cache()
    runner = SweepRunner(store=store)  # private ResultCache: no payload reuse
    start = time.perf_counter()
    results = runner.run(_spec())
    elapsed = time.perf_counter() - start
    assert not any(result.from_cache for result in results)
    return elapsed, [result.total_cycles for result in results]


@pytest.mark.slow
def test_artifact_store_warm_speedup(tmp_path):
    store = ArtifactStore(tmp_path / "store")

    cold_s, cold_cycles = _run_once(store)
    assert store.hits == 0 and store.misses > 0  # genuinely cold
    cold_misses = store.misses

    warm_s = float("inf")
    for _ in range(2):
        elapsed, warm_cycles = _run_once(store)
        assert warm_cycles == cold_cycles  # the store never changes results
        warm_s = min(warm_s, elapsed)
    assert store.misses == cold_misses  # warm runs never rebuilt anything

    speedup = cold_s / warm_s
    payload = {
        "workload": (
            f"resnet18 {LAYER} full scale, {ARRAY}x{ARRAY} ws array, "
            "DDR4 x 2ch + layout study (4 banks): cold store populate "
            "vs warm reload, plan LRU cleared between runs"
        ),
        "artifacts_persisted": cold_misses,
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "required_speedup": MIN_WARM_SPEEDUP,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nartifact store: {json.dumps(payload, indent=2)}")

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"artifact store regressed: warm run only {speedup:.2f}x faster than "
        f"cold ({warm_s:.2f}s vs {cold_s:.2f}s, need >= {MIN_WARM_SPEEDUP}x)"
    )
