"""Micro-benchmark for the BatchedEngine's small-batch regime.

The DRAM-enabled runs issue thousands of ~30-line prefetch bursts (one
contiguous read stream per double-buffer refill) between the huge fold
batches.  This harness times the three pipelines — closed-form
single-stream fast path, inlined scalar loop, full vector path — across
batch sizes on that traffic shape, writes
``BENCH_batched_small.json``, and pins the two tuning decisions:

* ``vector_threshold = 192``: the vector path's fixed numpy-dispatch
  cost only amortizes beyond ~190 lines, so mid-size batches stay on
  the scalar loop;
* ``single_stream_fast_path``: prefetch-shaped batches must beat the
  scalar loop by >= 1.5x (measured ~3x), which is what the end-to-end
  DRAM run's ~20% improvement rests on.

It also gates the *saturated* single-stream regime: read bursts larger
than the read queue settle into an exact affine steady state whose
row-hit streaks commit closed-form (steady-state block extrapolation),
so long fold fetches must beat the vector path by >= 4x (measured
>= 10x).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.dram.dram_sim import RamulatorLite
from repro.dram.engine import LineRequestBatch, LineStream
from repro.dram.engine_batched import BatchedEngine

BENCH_PATH = Path(__file__).parent / "BENCH_batched_small.json"

PREFETCH_LINES = 32  # the dominant small-batch bucket of the resnet18 run


def _time_path(path: str, n_lines: int, batches: int = 4000) -> float:
    """Microseconds per batch for one pipeline on prefetch traffic."""
    # issue_per_cycle=4 mirrors DramConfig's production front-end rate.
    engine = BatchedEngine(
        RamulatorLite(technology="ddr4", channels=1), max_issue_per_cycle=4
    )
    if path == "fast":
        engine.vector_threshold = 10**9
    elif path == "scalar":
        engine.single_stream_fast_path = False
        engine.vector_threshold = 10**9
    else:  # vector
        engine.single_stream_fast_path = False
        engine.vector_threshold = 1
    cycle = 0
    start = time.perf_counter()
    for index in range(batches):
        batch = LineRequestBatch(streams=(LineStream(index * n_lines, n_lines),))
        engine.process_batch(batch, cycle)
        cycle += 20_000  # spaced like real prefetches: prior reads retired
    return (time.perf_counter() - start) / batches * 1e6


@pytest.mark.slow
def test_small_batch_paths():
    sizes = (8, 16, 32, 64, 128, 192, 256)
    table = {
        path: {n: round(_time_path(path, n), 1) for n in sizes}
        for path in ("fast", "scalar", "vector")
    }
    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload.update(
        {
            "workload": "single-stream read bursts (DDR4 x1), us per batch",
            "sizes": list(sizes),
            "per_batch_us": table,
            "vector_threshold": BatchedEngine.vector_threshold,
            "fast_vs_scalar_at_prefetch": round(
                table["scalar"][PREFETCH_LINES] / table["fast"][PREFETCH_LINES], 2
            ),
        }
    )
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nbatched small-batch: {json.dumps(payload, indent=2)}")

    # The closed-form fast path must carry the prefetch bursts.
    assert table["fast"][PREFETCH_LINES] * 1.5 <= table["scalar"][PREFETCH_LINES]
    # The tuned threshold keeps mid-size batches off the vector path:
    # at 128 lines (the old threshold) scalar must still win.
    assert table["scalar"][128] < table["vector"][128]


SATURATED_LINES = 20_000  # a fold-sized fetch, >> the 128-entry read queue


def _time_saturated(path: str, batches: int = 5) -> float:
    """Milliseconds per batch for one pipeline on a saturated burst."""
    engine = BatchedEngine(
        RamulatorLite(technology="ddr4", channels=1), max_issue_per_cycle=4
    )
    if path == "fast":
        engine.vector_threshold = 10**9
    else:  # vector
        engine.single_stream_fast_path = False
        engine.vector_threshold = 1
    cycle = 0
    start = time.perf_counter()
    for index in range(batches):
        batch = LineRequestBatch(
            streams=(LineStream(index * SATURATED_LINES, SATURATED_LINES),)
        )
        engine.process_batch(batch, cycle)
        cycle += 10_000_000  # next fold: prior reads retired
    return (time.perf_counter() - start) / batches * 1e3


@pytest.mark.slow
def test_saturated_stream_extrapolation():
    fast_ms = _time_saturated("fast")
    vector_ms = _time_saturated("vector")
    speedup = vector_ms / fast_ms

    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload["saturated_stream"] = {
        "lines": SATURATED_LINES,
        "fast_ms_per_batch": round(fast_ms, 2),
        "vector_ms_per_batch": round(vector_ms, 2),
        "speedup": round(speedup, 1),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nsaturated stream: {json.dumps(payload['saturated_stream'], indent=2)}")

    assert speedup >= 4.0, (
        f"steady-state extrapolation regressed: saturated {SATURATED_LINES}-line "
        f"burst only {speedup:.1f}x faster than the vector path "
        f"({fast_ms:.2f}ms vs {vector_ms:.2f}ms)"
    )
