"""Figure 9: impact of DRAM channel count on memory throughput.

ResNet-18 layers on the Google-TPU-like configuration with DDR4-2400,
sweeping 1..8 channels.  Reproduced claims:

* early (large-ifmap) layers gain throughput roughly proportionally
  with channel count before saturating,
* late small layers saturate at ~2 channels,
* absolute throughputs reach the >2000 MB/s regime the paper reports.

The ``dram.channels`` axis is a groupable axis class: the sweep runner
collapses each layer's four channel points into one simulation unit —
one memoized compute plan, four stall resolutions through the DRAM
fan-out (``benchmarks/perf/test_perf_dram_fanout.py`` gates the
speedup).  The CSV is byte-identical to per-point simulation.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import resnet18
from repro.topology.topology import Topology

CHANNELS = (1, 2, 4, 8)
SCALE = 8
LAYERS = ("conv1", "conv2_1a", "conv3_1b", "conv4_1b", "conv5_1b", "fc")


def _throughputs():
    """Per-layer memory throughput (MB/s) for each channel count."""
    topo = resnet18(scale=SCALE).subset(list(LAYERS))
    spec = SweepSpec(
        base=SystemConfig(
            arch=ArchitectureConfig(array_rows=128, array_cols=128, dataflow="ws",
                                    ifmap_sram_kb=1024, filter_sram_kb=1024,
                                    ofmap_sram_kb=1024),
            dram=DramConfig(enabled=True, technology="ddr4"),
        ),
        axes=[Axis("dram.channels", CHANNELS)],
        # One single-layer topology per layer keeps v2's per-layer
        # semantics: every layer starts on a cold, exclusive backend.
        topologies=[Topology(layer.name, [layer]) for layer in topo],
        name="fig09",
    )
    table: dict[str, list[float]] = {name: [] for name in LAYERS}
    for result in SweepRunner(workers=SWEEP_WORKERS).run(spec):
        layer = result.run_result.layers[0]
        dram_bytes = layer.compute.total_dram_words * 2
        seconds = layer.total_cycles * 0.833e-9  # DDR4-2400 clock
        table[result.topology_name].append(dram_bytes / seconds / 1e6)
    return table


def test_fig9_channel_sweep(benchmark, results_dir):
    table = benchmark.pedantic(_throughputs, rounds=1, iterations=1)
    rows = [
        [name] + [f"{mbps:.0f}" for mbps in series] for name, series in table.items()
    ]
    emit_table(
        f"Figure 9 — memory throughput (MB/s) vs DRAM channels (ResNet-18 / {SCALE}x scale)",
        ["layer"] + [f"{c}ch" for c in CHANNELS],
        rows,
        results_dir / "fig09_dram_channels.csv",
    )

    conv1 = table["conv1"]
    # Early layers scale with channels.
    assert conv1[1] > conv1[0]
    assert conv1[2] >= conv1[1]

    # Every layer: more channels never hurts (within simulator noise).
    for series in table.values():
        assert series[-1] >= series[0] * 0.95

    # The paper's two regimes both appear: some layers keep scaling
    # (2->8 channel gain well above 2x), others saturate (gain < 2x).
    # At our down-scaled input it is the shrunken early layers that
    # saturate first — see EXPERIMENTS.md.
    gains = {name: series[3] / series[1] for name, series in table.items()}
    assert max(gains.values()) > 2.0
    assert min(gains.values()) < 2.0
