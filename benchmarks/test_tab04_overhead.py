"""Table IV: simulation-time overhead of each v3 feature versus v2.

The baseline is the v2-style run (ideal bandwidth, no extra features);
each feature's wall time divides by it.  Reproduced claims:

* sparsity runs *faster* than the dense baseline (ratios < 1 in the
  paper: 0.42x / 0.29x) because compressed weights mean fewer folds,
* Accelergy adds little (paper 1.19x), multicore and Ramulator are a
  few x, and layout is by far the most expensive feature (paper 16x).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_table
from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    SystemConfig,
)
from repro.core.simulator import clear_compute_plan_cache
from repro.layout.integrate import evaluate_layout_slowdown
from repro.multicore.multicore_sim import MultiCoreSimulator
from repro.run.sweep import single_point
from repro.sparsity.sparse_compute import SparseComputeSimulator
from repro.topology.models import get_model

pytestmark = pytest.mark.slow

SCALE = 8
ARRAY = 32


def _timed(fn) -> float:
    # Each feature is timed from a cold plan cache: the baseline and the
    # feature runs share architectures, and serving one a memoized fold
    # schedule the other had to build would skew the overhead ratio.
    clear_compute_plan_cache()
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _arch(dataflow="ws"):
    return ArchitectureConfig(array_rows=ARRAY, array_cols=ARRAY, dataflow=dataflow)


def _sweep_seconds(config: SystemConfig, topo) -> float:
    # Features built on the end-to-end simulator run as 1-point sweeps;
    # every run is timed by the same in-worker clock, so ratios against
    # the baseline stay apples-to-apples (cold plan cache, see _timed).
    clear_compute_plan_cache()
    return single_point(config, topo).wall_seconds


def _measure(workload: str):
    topo = get_model(workload, scale=SCALE)

    baseline = _sweep_seconds(SystemConfig(arch=_arch()), topo)

    def run_multicore():
        MultiCoreSimulator.homogeneous(2, 2, ARRAY, ARRAY, "ws").simulate_topology(topo)

    def run_sparse():
        sim = SparseComputeSimulator(ARRAY, ARRAY)
        sparse_topo = topo.with_sparsity("2:4")
        for layer in sparse_topo:
            sim.simulate_layer(layer, with_fold_specs=False)

    def run_layout():
        for layer in topo:
            evaluate_layout_slowdown(layer, "ws", ARRAY, ARRAY, 4, 64, max_folds=4)

    seconds = {
        "multicore": _timed(run_multicore),
        "sparsity_2_4": _timed(run_sparse),
        "accelergy": _sweep_seconds(
            SystemConfig(arch=_arch(), energy=EnergyConfig(enabled=True)), topo
        ),
        "ramulator": _sweep_seconds(
            SystemConfig(arch=_arch(), dram=DramConfig(enabled=True, channels=2)), topo
        ),
        "layout": _timed(run_layout),
    }
    return {name: value / baseline for name, value in seconds.items()}


def test_tab4_feature_overhead(benchmark, results_dir):
    workloads = ("alexnet", "resnet18", "vit_s")
    ratios = benchmark.pedantic(
        lambda: {wl: _measure(wl) for wl in workloads}, rounds=1, iterations=1
    )
    feature_names = list(next(iter(ratios.values())).keys())
    rows = [
        [wl] + [f"{ratios[wl][feat]:.2f}x" for feat in feature_names]
        for wl in workloads
    ]
    means = [
        sum(ratios[wl][feat] for wl in workloads) / len(workloads)
        for feat in feature_names
    ]
    rows.append(["mean"] + [f"{m:.2f}x" for m in means])
    emit_table(
        f"Table IV — per-feature simulation-time overhead vs v2 baseline ({SCALE}x scale)",
        ["workload"] + feature_names,
        rows,
        results_dir / "tab04_overhead.csv",
    )

    mean = dict(zip(feature_names, means))
    # Sparse simulation is cheaper than the dense baseline (paper: 0.42x).
    assert mean["sparsity_2_4"] < 1.5
    # The detailed-model features (layout, Ramulator) are the two most
    # expensive, as in the paper (16.03x and 2.13x respectively).
    top_two = sorted(mean, key=mean.get, reverse=True)[:2]
    assert set(top_two) == {"layout", "ramulator"}
    # Accelergy's overhead is modest (paper: 1.19x).
    assert mean["accelergy"] < 2.5
