"""Section IX-B (DRAM): WS wins compute cycles, OS wins with DRAM stalls.

Six ResNet-18 layers on a 32x32 array.  SCALE-Sim v2 (compute only)
shows WS ahead of OS (paper: 21% fewer compute cycles); adding the DRAM
model with a small request queue flips the winner (paper: OS 30.1% lower
execution cycles), because WS's per-K-fold partial-sum traffic hammers
the write path.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.dataflow import Dataflow, analytical_runtime
from repro.core.simulator import Simulator
from repro.topology.models import resnet18

LAYERS = 6
SIM_SCALE = 8


def _compare():
    # Compute-only comparison on full-size shapes (closed form).
    full = resnet18().first_layers(LAYERS)
    compute = {
        df: sum(
            analytical_runtime(layer.to_gemm(), Dataflow.parse(df), 32, 32)
            for layer in full
        )
        for df in ("ws", "os")
    }

    # Execution comparison with the DRAM model on scaled shapes.
    scaled = resnet18(scale=SIM_SCALE).first_layers(LAYERS)
    execution = {}
    for df in ("ws", "os"):
        cfg = SystemConfig(
            arch=ArchitectureConfig(
                array_rows=32, array_cols=32, dataflow=df,
                ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=64,
            ),
            dram=DramConfig(
                enabled=True, channels=1, read_queue_entries=32, write_queue_entries=32
            ),
        )
        execution[df] = Simulator(cfg).run(scaled).total_cycles
    return compute, execution


def test_sec9_dram_flips_the_winner(benchmark, results_dir):
    compute, execution = benchmark.pedantic(_compare, rounds=1, iterations=1)
    ws_compute_gain = 1 - compute["ws"] / compute["os"]
    os_execution_gain = 1 - execution["os"] / execution["ws"]
    rows = [
        ["compute cycles (v2 view)", compute["ws"], compute["os"],
         f"WS {ws_compute_gain * 100:.1f}% lower"],
        ["execution cycles (with DRAM)", execution["ws"], execution["os"],
         f"OS {os_execution_gain * 100:.1f}% lower"],
    ]
    emit_table(
        "Section IX-B — six ResNet-18 layers: WS vs OS",
        ["metric", "WS", "OS", "winner"],
        rows,
        results_dir / "sec9_dram_dataflow.csv",
    )
    print(f"WS compute-cycle reduction: {ws_compute_gain * 100:.1f}% (paper: 21%)")
    print(f"OS execution-cycle reduction: {os_execution_gain * 100:.1f}% (paper: 30.1%)")

    # v2 view: WS wins compute cycles.
    assert compute["ws"] < compute["os"]
    # v3 view: DRAM stalls flip the winner to OS.
    assert execution["os"] < execution["ws"]
