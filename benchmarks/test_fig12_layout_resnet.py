"""Figure 12: layout slowdown vs (bandwidth, banks) — ResNet-18.

Three dataflows, on-chip bandwidths {64..1024} words/cycle, bank counts
{1..16} at fixed total bandwidth.  Slowdown is the layout-modelled
latency over SCALE-Sim v2's flat-bandwidth latency, minus one.
Reproduced claim (the paper's key observation): at a given bandwidth,
more banks reduce the slowdown — asserted end-to-end (1 bank vs 16;
adjacent bank pairs can show ~1e-4 jitter on the IS dataflow at full
scale).

Runs at the paper's scale: the unscaled ResNet-18 conv2_1a layer on a
128x128 array with full-layer traces (every fold) — made tractable by
the vectorized bank-conflict evaluator and the trace fan-out: each
dataflow's whole (bandwidth x banks) grid shares one streaming trace
pass through ``evaluate_layout_slowdown_many`` (see
``benchmarks/perf/test_perf_layout_fanout.py`` for the tracked
speedup over independent per-config calls).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.layout.integrate import LayoutEvalConfig, evaluate_layout_slowdown_many
from repro.topology.models import resnet18

pytestmark = pytest.mark.slow

BANDWIDTHS = (64, 128, 256, 512, 1024)
BANKS = (1, 2, 4, 8, 16)
ARRAY = 128  # the paper's array size
SCALE = 1  # full-size layer
MAX_FOLDS = None  # full-layer traces

GRID = [
    LayoutEvalConfig(num_banks=banks, total_bandwidth_words=bw)
    for bw in BANDWIDTHS
    for banks in BANKS
]


def _sweep():
    layer = resnet18(scale=SCALE).layer_named("conv2_1a")
    table = {}
    for dataflow in ("is", "ws", "os"):
        results = evaluate_layout_slowdown_many(
            layer,
            dataflow,
            ARRAY,
            ARRAY,
            GRID,
            max_folds=MAX_FOLDS,
            workers=SWEEP_WORKERS,
        )
        for config, result in zip(GRID, results):
            table[(dataflow, config.total_bandwidth_words, config.num_banks)] = (
                result.slowdown
            )
    return table


def test_fig12_layout_resnet(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [df, bw, banks, f"{slow:+.4f}"] for (df, bw, banks), slow in table.items()
    ]
    emit_table(
        f"Figure 12 — layout slowdown vs BW model (ResNet-18 conv2_1a, {ARRAY}x{ARRAY}, full layer)",
        ["dataflow", "bandwidth", "banks", "slowdown"],
        rows,
        results_dir / "fig12_layout_resnet.csv",
    )

    # More banks at fixed bandwidth: slowdown non-increasing end-to-end.
    for dataflow in ("is", "ws", "os"):
        for bw in BANDWIDTHS:
            assert table[(dataflow, bw, 1)] >= table[(dataflow, bw, 16)] - 1e-9, (
                dataflow,
                bw,
            )

    # The single-bank configuration shows real conflicts somewhere.
    assert max(table[(df, 64, 1)] for df in ("is", "ws", "os")) > 0
