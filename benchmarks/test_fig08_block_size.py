"""Figure 8: compute cycles for ViT feed-forward layers under varying
array sizes, sparsity ratios and block sizes.

Two run sets, as in the paper:

* set 1 — array sizes 4x4 .. 32x32 with the block size tied to the
  array dimension (ratios 1:M .. M:M),
* set 2 — fixed 32x32 array with block sizes M in {4, 8, 16, 32}
  (ratios 1:M .. M:M each).

Reproduced claims: cycles grow with N at fixed M; larger block sizes
give finer-grained control, and the low end of the N:M spectrum with a
large M performs best.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, SparsityConfig, SystemConfig
from repro.run.sweep import ResultCache, SweepRunner, SweepSpec
from repro.topology.models import vit_ff_layers
from repro.topology.topology import Topology

SCALE = 2

#: Shared across both run sets: set 1's 32x32 column (block == 32) is the
#: same grid as set 2's M=32 block-size row, so those points are cache hits.
_CACHE = ResultCache()


def _sparse_ff(n: int, m: int) -> Topology:
    base = vit_ff_layers(scale=SCALE).with_sparsity(f"{n}:{m}")
    return Topology(f"vit_ff_{n}of{m}", base.layers)


def _cycles(array: int, ratios: list[tuple[int, int]]) -> list[int]:
    """Sparse compute cycles for each N:M ratio on an ``array``-sized PE grid."""
    spec = SweepSpec(
        base=SystemConfig(
            arch=ArchitectureConfig(array_rows=array, array_cols=array, dataflow="ws"),
            sparsity=SparsityConfig(sparsity_support=True),
        ),
        topologies=[_sparse_ff(n, m) for n, m in ratios],
        name=f"fig08_{array}x{array}",
        simulate_dense=False,  # Figure 8 only reads the sparse cycles
    )
    results = SweepRunner(workers=SWEEP_WORKERS, cache=_CACHE).run(spec)
    return [result.sparse_compute_cycles for result in results]


def _set1():
    rows = []
    for array in (4, 8, 16, 32):
        m = array  # block tied to array dimension
        ratios = [(n, m) for n in range(1, m + 1)]
        for (n, _), cycles in zip(ratios, _cycles(array, ratios)):
            rows.append([f"{array}x{array}", f"{n}:{m}", cycles])
    return rows


def _set2():
    rows = []
    for m in (4, 8, 16, 32):
        ratios = [(n, m) for n in range(1, m + 1)]
        for (n, _), cycles in zip(ratios, _cycles(32, ratios)):
            rows.append(["32x32", f"{n}:{m}", cycles])
    return rows


def test_fig8_set1_array_tied_blocks(benchmark, results_dir):
    rows = benchmark.pedantic(_set1, rounds=1, iterations=1)
    emit_table(
        f"Figure 8 (set 1) — ViT FF cycles, block == array dim ({SCALE}x scale)",
        ["array", "N:M", "cycles"],
        rows,
        results_dir / "fig08_set1_block_size.csv",
    )
    # Within one array size, cycles are non-decreasing in N.
    by_array: dict[str, list[int]] = {}
    for array, _, cycles in rows:
        by_array.setdefault(array, []).append(cycles)
    for series in by_array.values():
        assert all(a <= b for a, b in zip(series, series[1:]))


def test_fig8_set2_fixed_array(benchmark, results_dir):
    rows = benchmark.pedantic(_set2, rounds=1, iterations=1)
    emit_table(
        f"Figure 8 (set 2) — ViT FF cycles on 32x32, block sizes 4..32 ({SCALE}x scale)",
        ["array", "N:M", "cycles"],
        rows,
        results_dir / "fig08_set2_block_size.csv",
    )
    cycles = {(nm): c for _, nm, c in rows}
    # Finer-grained control: 1:32 expresses lower density than 1:4 and
    # therefore fewer cycles.
    assert cycles["1:32"] < cycles["1:4"]
    # Equal densities land close to each other (same effective K).
    assert cycles["2:8"] == cycles["1:4"]
    assert cycles["8:32"] == cycles["2:8"]
