"""Figure 5: total cycles (incl. memory stalls) vs on-chip memory size.

ResNet-18 under 1:4, 2:4 and 4:4 (dense) sparsity, weight-stationary,
sweeping the on-chip SRAM size.  Reproduced claims:

* more on-chip memory -> fewer total cycles (stalls shrink),
* sparser models need fewer cycles at every memory point,
* a latency budget met by the dense core at some memory size is met by
  the 2:4 sparse core with a much smaller memory (the paper's
  3.00 MB -> 768 kB example).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.memory.double_buffer import DoubleBufferMemory, IdealBandwidthBackend
from repro.sparsity.sparse_compute import SparseComputeSimulator
from repro.topology.models import resnet18
from repro.topology.layer import SparsityRatio
from repro.sparsity.pattern import layerwise_pattern

MEM_SIZES_KB = (96, 192, 384, 768, 1536, 3072)
RATIOS = ("1:4", "2:4", "4:4")
SCALE = 4  # spatial down-scale for trace-free but fold-heavy runs
BANDWIDTH = 16


def _total_cycles(ratio: str, mem_kb: int) -> int:
    topo = resnet18(scale=SCALE).with_sparsity(ratio)
    words = mem_kb * 1024 // 2
    sim = SparseComputeSimulator(
        32, 32, ifmap_sram_words=words, ofmap_sram_words=words
    )
    total = 0
    for layer in topo:
        shape = layer.to_gemm()
        pattern = layerwise_pattern(shape.m, shape.k, layer.sparsity or SparsityRatio(4, 4))
        result = sim.simulate_layer(layer, pattern=pattern)
        timeline = DoubleBufferMemory(IdealBandwidthBackend(BANDWIDTH)).run(result.fold_specs)
        total += timeline.total_cycles
    return total


def _sweep():
    return {
        ratio: [_total_cycles(ratio, kb) for kb in MEM_SIZES_KB] for ratio in RATIOS
    }


def test_fig5_cycles_vs_memory(benchmark, results_dir):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [f"resnet18_{ratio.replace(':', 's')}"] + data[ratio] for ratio in RATIOS
    ]
    emit_table(
        f"Figure 5 — total cycles vs on-chip memory (ResNet-18 / {SCALE}x scale)",
        ["series"] + [f"{kb}kB" for kb in MEM_SIZES_KB],
        rows,
        results_dir / "fig05_sparsity_memory.csv",
    )

    # More memory never increases total cycles.
    for ratio in RATIOS:
        series = data[ratio]
        assert all(a >= b for a, b in zip(series, series[1:])), ratio

    # Sparser is faster at every memory point.
    for i in range(len(MEM_SIZES_KB)):
        assert data["1:4"][i] <= data["2:4"][i] <= data["4:4"][i]

    # The paper's area-saving argument: the 2:4 core meets the dense
    # core's best (largest-memory) latency with a smaller memory.
    dense_best = data["4:4"][-1]
    smaller_points = [
        kb for kb, cycles in zip(MEM_SIZES_KB, data["2:4"]) if cycles <= dense_best
    ]
    assert smaller_points and smaller_points[0] < MEM_SIZES_KB[-1]
    print(
        f"dense core needs {MEM_SIZES_KB[-1]} kB for {dense_best} cycles; "
        f"2:4 sparse core reaches it with {smaller_points[0]} kB"
    )
