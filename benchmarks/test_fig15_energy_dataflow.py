"""Figure 15: energy across dataflows, array sizes and workloads.

RCNN, ResNet-50 and ViT on arrays {8, 16, 32, 64, 128} squared under the
OS, WS and IS dataflows.  Reproduced claims:

* OS consumes the least energy in (almost) every case — it writes each
  output once and keeps partial sums in the PE,
* within a workload, energy grows with array size (leakage + idle-PE
  cost outpace the latency gain).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.energy.accelergy import AccelergyLite
from repro.topology.models import get_model

ARRAYS = (8, 16, 32, 64, 128)
DATAFLOWS = ("os", "ws", "is")
WORKLOADS = (("rcnn", 8), ("resnet50", 8), ("vit_base", 4))


def _energy_mj(workload: str, scale: int, dataflow: str, array: int) -> float:
    arch = ArchitectureConfig(
        array_rows=array, array_cols=array, dataflow=dataflow, bandwidth_words=200
    )
    energy = EnergyConfig(enabled=True)
    run = Simulator(SystemConfig(arch=arch, energy=energy)).run(
        get_model(workload, scale=scale)
    )
    return AccelergyLite(arch, energy).estimate_run(run).total_mj


def _sweep():
    table = {}
    for workload, scale in WORKLOADS:
        for dataflow in DATAFLOWS:
            for array in ARRAYS:
                table[(workload, dataflow, array)] = _energy_mj(
                    workload, scale, dataflow, array
                )
    return table


def test_fig15_energy(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [wl, df, array, f"{mj:.3f}"] for (wl, df, array), mj in table.items()
    ]
    emit_table(
        "Figure 15 — energy (mJ) per workload x dataflow x array (scaled models)",
        ["workload", "dataflow", "array", "energy_mJ"],
        rows,
        results_dir / "fig15_energy_dataflow.csv",
    )

    # OS wins or ties in almost every (workload, array) case.
    cases = 0
    os_wins = 0
    for workload, _ in WORKLOADS:
        for array in ARRAYS:
            cases += 1
            energies = {df: table[(workload, df, array)] for df in DATAFLOWS}
            if energies["os"] <= min(energies.values()) * 1.02:
                os_wins += 1
    print(f"OS best-or-tied in {os_wins}/{cases} cases")
    assert os_wins >= cases * 0.8

    # Energy grows from the smallest to the largest array per workload.
    for workload, _ in WORKLOADS:
        for dataflow in DATAFLOWS:
            assert (
                table[(workload, dataflow, 128)] > table[(workload, dataflow, 8)]
            ), (workload, dataflow)
