"""Figure 15: energy across dataflows, array sizes and workloads.

RCNN, ResNet-50 and ViT on arrays {8, 16, 32, 64, 128} squared under the
OS, WS and IS dataflows.  Reproduced claims:

* OS consumes the least energy in (almost) every case — it writes each
  output once and keeps partial sums in the PE,
* within a workload, energy grows with array size (leakage + idle-PE
  cost outpace the latency gain).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import get_model

pytestmark = pytest.mark.slow

ARRAYS = (8, 16, 32, 64, 128)
DATAFLOWS = ("os", "ws", "is")
WORKLOADS = (("rcnn", 8), ("resnet50", 8), ("vit_base", 4))


def _sweep():
    spec = SweepSpec(
        base=SystemConfig(
            arch=ArchitectureConfig(bandwidth_words=200),
            energy=EnergyConfig(enabled=True),
        ),
        axes=[
            Axis("dataflow", DATAFLOWS, fields=("arch.dataflow",)),
            Axis("array", ARRAYS, fields=("arch.array_rows", "arch.array_cols")),
        ],
        topologies=[get_model(workload, scale=scale) for workload, scale in WORKLOADS],
        name="fig15",
    )
    return {
        (
            result.topology_name,
            result.assignment_dict["dataflow"],
            result.assignment_dict["array"],
        ): result.energy_mj
        for result in SweepRunner(workers=SWEEP_WORKERS).run(spec)
    }


def test_fig15_energy(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [wl, df, array, f"{mj:.3f}"] for (wl, df, array), mj in table.items()
    ]
    emit_table(
        "Figure 15 — energy (mJ) per workload x dataflow x array (scaled models)",
        ["workload", "dataflow", "array", "energy_mJ"],
        rows,
        results_dir / "fig15_energy_dataflow.csv",
    )

    # OS wins or ties in almost every (workload, array) case.
    cases = 0
    os_wins = 0
    for workload, _ in WORKLOADS:
        for array in ARRAYS:
            cases += 1
            energies = {df: table[(workload, df, array)] for df in DATAFLOWS}
            if energies["os"] <= min(energies.values()) * 1.02:
                os_wins += 1
    print(f"OS best-or-tied in {os_wins}/{cases} cases")
    assert os_wins >= cases * 0.8

    # Energy grows from the smallest to the largest array per workload.
    for workload, _ in WORKLOADS:
        for dataflow in DATAFLOWS:
            assert (
                table[(workload, dataflow, 128)] > table[(workload, dataflow, 8)]
            ), (workload, dataflow)
