"""Table III: Accelergy-integration validation across system states.

Compares the model's idle / active / power-gated powers against the
paper's PnR (65 nm) characterisation.  Reproduced claim: every state is
within 5% of PnR (the paper reports +2.4%, -2.3%, +4.3%).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.energy.accelergy import SYSTEM_STATE_REFERENCE_MW, system_state_power_mw


def _validate():
    rows = []
    for state, reference in SYSTEM_STATE_REFERENCE_MW.items():
        model = system_state_power_mw(state)
        error = (model - reference) / reference * 100
        rows.append([state, f"{reference:.1f}", f"{model:.1f}", f"{error:+.1f}%"])
    return rows


def test_tab3_system_states(benchmark, results_dir):
    rows = benchmark.pedantic(_validate, rounds=1, iterations=1)
    emit_table(
        "Table III — system-state power (mW): PnR vs SCALE-Sim v3 + AccelergyLite",
        ["state", "PnR", "model", "error"],
        rows,
        results_dir / "tab03_energy_states.csv",
    )
    for state, reference in SYSTEM_STATE_REFERENCE_MW.items():
        model = system_state_power_mw(state)
        assert abs(model - reference) / reference < 0.05, state
