"""Table V: latency, energy and EdP for 32x32 / 64x64 / 128x128 arrays.

ResNet-50, RCNN and ViT-base under the weight-stationary dataflow.
Reproduced claims (paper headline):

* the 128x128 array is several-x faster than 32x32 on ViT-base (6.53x
  in the paper),
* the 32x32 array is the most energy-frugal (2.86x in the paper),
* EdP improves sharply from 32x32 and flattens between 64x64 and
  128x128 (the paper's 64-vs-128 margin is 0.8%).

The array axis is ``arch.*`` (not a groupable class), so every point is
its own simulation unit on the grouped-unit compute path; repeated
layers within each workload still share memoized compute plans.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import get_model

ARRAYS = (32, 64, 128)
WORKLOADS = (("resnet50", 4), ("rcnn", 4), ("vit_base", 1))


def _sweep():
    spec = SweepSpec(
        base=SystemConfig(
            arch=ArchitectureConfig(
                dataflow="ws",
                ifmap_sram_kb=1024,
                filter_sram_kb=1024,
                ofmap_sram_kb=1024,
                bandwidth_words=100,
            ),
            energy=EnergyConfig(enabled=True),
        ),
        axes=[Axis("array", ARRAYS, fields=("arch.array_rows", "arch.array_cols"))],
        topologies=[get_model(workload, scale=scale) for workload, scale in WORKLOADS],
        name="tab05",
    )
    table = {}
    for result in SweepRunner(workers=SWEEP_WORKERS).run(spec):
        latency_per_layer = result.total_cycles / len(result.run_result.layers)
        table[(result.topology_name, result.assignment_dict["array"])] = (
            latency_per_layer,
            result.energy_mj,
            latency_per_layer * result.energy_mj,
        )
    return table


def test_tab5_latency_energy_edp(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for (workload, array), (latency, energy, edp) in table.items():
        rows.append([workload, array, f"{latency:.0f}", f"{energy:.2f}", f"{edp:.1f}"])
    emit_table(
        "Table V — latency (cycles/layer), energy (mJ), EdP (cycles x mJ / layer)",
        ["workload", "array", "latency", "energy_mJ", "EdP"],
        rows,
        results_dir / "tab05_latency_energy_edp.csv",
    )

    for workload, _ in WORKLOADS:
        lat = {a: table[(workload, a)][0] for a in ARRAYS}
        mj = {a: table[(workload, a)][1] for a in ARRAYS}
        edp = {a: table[(workload, a)][2] for a in ARRAYS}
        # Latency strictly improves with array size.
        assert lat[32] > lat[64] > lat[128], workload
        # The smallest array is the most energy-frugal.
        assert mj[32] <= mj[64] and mj[32] < mj[128], workload
        # EdP improves sharply beyond 32x32.
        assert min(edp[64], edp[128]) < edp[32], workload

    vit_speedup = table[("vit_base", 32)][0] / table[("vit_base", 128)][0]
    vit_energy_ratio = table[("vit_base", 128)][1] / table[("vit_base", 32)][1]
    print(f"ViT-base: 128x128 speedup over 32x32 = {vit_speedup:.2f}x (paper 6.53x)")
    print(f"ViT-base: 32x32 energy advantage     = {vit_energy_ratio:.2f}x (paper 2.86x)")
    assert vit_speedup > 4
    assert vit_energy_ratio > 1.2
