"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation section.  Heavy sweeps run once (``benchmark.pedantic`` with
a single round) and print their reproduced rows; each bench also writes
a CSV artifact under ``benchmarks/results/`` that EXPERIMENTS.md indexes.

Workload scaling: sweeps whose cost is dominated by cycle-accurate DRAM
or trace generation run on ``scale``-reduced models.  The *shape* of
each result (orderings, crossovers, scaling trends) is what the paper
reproduction asserts; headers note the scale used.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker-pool size for the sweep-based benchmarks: parallel on multicore
#: machines, plain serial execution on single-core CI boxes.
SWEEP_WORKERS = max(1, min(4, os.cpu_count() or 1))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory for reproduced-table CSV artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit_table(title: str, header: list[str], rows: list[list[object]], path: Path) -> None:
    """Print a reproduced table and persist it as CSV."""
    from repro.utils.csvio import write_csv

    write_csv(path, header, rows)
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print(f"[written to {path}]")
