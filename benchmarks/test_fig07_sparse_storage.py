"""Figure 7: memory storage for dense vs 1:4 / 2:4 / 3:4 ResNet-18.

For each sparsity ratio the storage is the compressed filter data plus
its blocked-ELLPACK metadata.  Reproduced claim: storage shrinks
monotonically with sparsity, and the metadata share is visible but
small (log2(4) = 2 bits per surviving element at 16-bit weights).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.sparsity.formats import blocked_ellpack_storage, dense_storage
from repro.sparsity.pattern import layerwise_pattern
from repro.topology.layer import SparsityRatio
from repro.topology.models import resnet18

RATIOS = ("1:4", "2:4", "3:4")


def _storage_table():
    topo = resnet18()  # full-size shapes; storage math is closed-form
    rows = []
    totals = {"dense": 0.0, **{r: 0.0 for r in RATIOS}}
    for layer in topo:
        shape = layer.to_gemm()
        dense = dense_storage(shape.m, shape.k, word_bits=16)
        row = [layer.name, f"{dense.total_kb:.1f}"]
        totals["dense"] += dense.total_kb
        for ratio in RATIOS:
            pattern = layerwise_pattern(shape.m, shape.k, SparsityRatio.parse(ratio))
            est = blocked_ellpack_storage(pattern, word_bits=16)
            row.append(f"{est.total_kb:.1f}")
            totals[ratio] += est.total_kb
        rows.append(row)
    return rows, totals


def test_fig7_storage_comparison(benchmark, results_dir):
    rows, totals = benchmark.pedantic(_storage_table, rounds=1, iterations=1)
    emit_table(
        "Figure 7 — filter storage (kB), dense vs sparse, ResNet-18",
        ["layer", "dense", "1:4", "2:4", "3:4"],
        rows,
        results_dir / "fig07_sparse_storage.csv",
    )
    print({k: f"{v:.0f} kB" for k, v in totals.items()})

    # Storage ordering: 1:4 < 2:4 < 3:4 < dense.
    assert totals["1:4"] < totals["2:4"] < totals["3:4"] < totals["dense"]

    # Metadata overhead keeps 3:4 below dense but above 75% of it.
    assert totals["3:4"] > 0.75 * totals["dense"]

    # 1:4 keeps 25% of the data + 2/16 metadata ~ 28% of dense.
    assert totals["1:4"] / totals["dense"] < 0.35
