"""Ablation: DRAM technology and address-mapping design choices.

Not a paper figure — DESIGN.md calls for ablations of the design knobs
the reproduction exposes.  Two questions:

* how much does the memory *technology* (at fixed channel count) move
  end-to-end latency for a conv workload?
* how much does the address-mapping order matter?  Channel-interleaved
  lines (``ro_ba_ra_co_ch``) should beat a column-major order
  (``ro_ba_ra_ch_co``) that serialises a stream onto one channel.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.topology.models import resnet18

SCALE = 8
TOPOLOGY = resnet18(scale=SCALE).first_layers(8)
ARCH = ArchitectureConfig(array_rows=32, array_cols=32, dataflow="ws",
                          ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=64)


def _total(dram: DramConfig) -> int:
    return Simulator(SystemConfig(arch=ARCH, dram=dram)).run(TOPOLOGY).total_cycles


def _sweep():
    technologies = ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm2")
    tech_rows = [
        [tech, _total(DramConfig(enabled=True, technology=tech, channels=2))]
        for tech in technologies
    ]
    mapping_rows = [
        [mapping, _total(DramConfig(enabled=True, channels=4, address_mapping=mapping))]
        for mapping in ("ro_ba_ra_co_ch", "ro_ba_ra_ch_co", "ro_co_ra_ba_ch")
    ]
    return tech_rows, mapping_rows


def test_ablation_dram_choices(benchmark, results_dir):
    tech_rows, mapping_rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        f"Ablation — DRAM technology (2 channels, ResNet-18 / {SCALE}x scale)",
        ["technology", "total_cycles"],
        tech_rows,
        results_dir / "ablation_dram_technology.csv",
    )
    emit_table(
        "Ablation — address mapping (4 channels)",
        ["mapping", "total_cycles"],
        mapping_rows,
        results_dir / "ablation_address_mapping.csv",
    )

    totals = dict((row[0], row[1]) for row in tech_rows)
    # Wider/faster buses beat DDR3 for a streaming accelerator.
    assert totals["gddr5"] <= totals["ddr3"]
    assert totals["hbm2"] <= totals["ddr3"]

    mapping_totals = dict((row[0], row[1]) for row in mapping_rows)
    # Channel-interleaved lines are never worse than channel-major order.
    assert mapping_totals["ro_ba_ra_co_ch"] <= mapping_totals["ro_ba_ra_ch_co"] * 1.02
