"""Ablation: DRAM technology and address-mapping design choices.

Not a paper figure — DESIGN.md calls for ablations of the design knobs
the reproduction exposes.  Two questions:

* how much does the memory *technology* (at fixed channel count) move
  end-to-end latency for a conv workload?
* how much does the address-mapping order matter?  Channel-interleaved
  lines (``ro_ba_ra_co_ch``) should beat a column-major order
  (``ro_ba_ra_ch_co``) that serialises a stream onto one channel.

Both sweeps run through :class:`~repro.run.sweep.SweepRunner`, whose
axis-class grouping collapses each ``dram.*`` grid into a single
simulation unit: one shared compute plan, one stall resolution per
technology / mapping (the DRAM fan-out seam).  Cycle counts are
bit-identical to independent ``Simulator.run`` calls.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import resnet18

SCALE = 8
TOPOLOGY = resnet18(scale=SCALE).first_layers(8)
ARCH = ArchitectureConfig(array_rows=32, array_cols=32, dataflow="ws",
                          ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=64)

TECHNOLOGIES = ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm2")
MAPPINGS = ("ro_ba_ra_co_ch", "ro_ba_ra_ch_co", "ro_co_ra_ba_ch")


def _axis_sweep(axis: Axis, dram: DramConfig, name: str) -> list[list[object]]:
    spec = SweepSpec(
        base=SystemConfig(arch=ARCH, dram=dram),
        axes=[axis],
        topologies=[TOPOLOGY],
        name=name,
    )
    return [
        [result.assignment_dict[axis.name], result.total_cycles]
        for result in SweepRunner(workers=SWEEP_WORKERS).run(spec)
    ]


def _sweep():
    tech_rows = _axis_sweep(
        Axis("dram.technology", TECHNOLOGIES),
        DramConfig(enabled=True, channels=2),
        "ablation_tech",
    )
    mapping_rows = _axis_sweep(
        Axis("dram.address_mapping", MAPPINGS),
        DramConfig(enabled=True, channels=4),
        "ablation_mapping",
    )
    return tech_rows, mapping_rows


def test_ablation_dram_choices(benchmark, results_dir):
    tech_rows, mapping_rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        f"Ablation — DRAM technology (2 channels, ResNet-18 / {SCALE}x scale)",
        ["technology", "total_cycles"],
        tech_rows,
        results_dir / "ablation_dram_technology.csv",
    )
    emit_table(
        "Ablation — address mapping (4 channels)",
        ["mapping", "total_cycles"],
        mapping_rows,
        results_dir / "ablation_address_mapping.csv",
    )

    totals = dict((row[0], row[1]) for row in tech_rows)
    # Wider/faster buses beat DDR3 for a streaming accelerator.
    assert totals["gddr5"] <= totals["ddr3"]
    assert totals["hbm2"] <= totals["ddr3"]

    mapping_totals = dict((row[0], row[1]) for row in mapping_rows)
    # Channel-interleaved lines are never worse than channel-major order.
    assert mapping_totals["ro_ba_ra_co_ch"] <= mapping_totals["ro_ba_ra_ch_co"] * 1.02
