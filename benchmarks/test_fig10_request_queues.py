"""Figure 10: impact of memory request-queue size on inference latency.

Workloads run with read/write request queues of 32, 128 and 512 entries.
Reproduced claims:

* stall fraction and total cycles drop as the queue grows,
* the 32 -> 128 step brings a large total-cycle improvement (the paper's
  average is 3.76x) with a further improvement from 128 -> 512.

The queue axis touches only ``dram.*`` fields, so each workload's three
points ride one grouped simulation unit (shared compute plan + shared
decoded line streams, per-queue-size stall resolution) — the DRAM
fan-out seam of PR 5.  The CSV is byte-identical to per-point runs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_WORKERS, emit_table
from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import get_model

pytestmark = pytest.mark.slow

QUEUES = (32, 128, 512)
WORKLOADS = (("alexnet", 4), ("resnet18", 4), ("vit_s", 2), ("vit_base", 2))


def _sweep():
    # A memory-hungry configuration (wide array, small SRAM, 8 channels,
    # 16-wide issue) so the request queue actually caps the in-flight
    # parallelism; see EXPERIMENTS.md for why the magnitude is smaller
    # than the paper's demand-replay accounting.
    spec = SweepSpec(
        base=SystemConfig(
            arch=ArchitectureConfig(array_rows=128, array_cols=128, dataflow="ws",
                                    ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=64),
            dram=DramConfig(
                enabled=True, technology="ddr4", channels=8, issue_per_cycle=16
            ),
        ),
        axes=[
            Axis(
                "queue",
                QUEUES,
                fields=("dram.read_queue_entries", "dram.write_queue_entries"),
            )
        ],
        topologies=[get_model(workload, scale=scale) for workload, scale in WORKLOADS],
        name="fig10",
    )
    table: dict[str, list[tuple[int, float]]] = {}
    for result in SweepRunner(workers=SWEEP_WORKERS).run(spec):
        total = result.total_cycles
        stall = result.total_stall_cycles
        table.setdefault(result.topology_name, []).append(
            (total, stall / total if total else 0.0)
        )
    return table


def test_fig10_queue_sweep(benchmark, results_dir):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for workload, series in table.items():
        row = [workload]
        for total, frac in series:
            row.extend([total, f"{frac * 100:.1f}%"])
        rows.append(row)
    emit_table(
        "Figure 10 — total cycles and stall fraction vs request-queue size",
        ["workload", "cyc@32", "stall@32", "cyc@128", "stall@128", "cyc@512", "stall@512"],
        rows,
        results_dir / "fig10_request_queues.csv",
    )

    improvements_32_128 = []
    improvements_128_512 = []
    for workload, series in table.items():
        totals = [t for t, _ in series]
        fracs = [f for _, f in series]
        # Larger queues never slow things down.
        assert totals[0] >= totals[1] >= totals[2], workload
        assert fracs[0] >= fracs[2], workload
        improvements_32_128.append(totals[0] / totals[1])
        improvements_128_512.append(totals[1] / totals[2])

    mean_first = sum(improvements_32_128) / len(improvements_32_128)
    mean_second = sum(improvements_128_512) / len(improvements_128_512)
    print(f"mean total-cycle improvement 32->128: {mean_first:.2f}x (paper: 3.76x)")
    print(f"mean total-cycle improvement 128->512: {mean_second:.2f}x (paper: +38%)")
    # Shape: bigger queues help (strictly somewhere), first step biggest.
    assert mean_first >= 1.0 and mean_second >= 1.0 - 1e-9
    assert any(r > 1.0 for r in improvements_32_128)
    assert mean_first >= mean_second - 1e-9
