"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; with ``--no-use-pep517 --no-build-isolation`` (or the
equivalent pip.conf) this shim lets ``pip install -e .`` take the
classic ``setup.py develop`` path.  Metadata comes from pyproject.toml.
"""

from setuptools import setup

setup()
