"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; with ``--no-use-pep517 --no-build-isolation`` (or the
equivalent pip.conf) this shim lets ``pip install -e .`` take the
classic ``setup.py develop`` path.

Beyond metadata, this also ships the on-disk ``configs/`` and
``topologies/`` artifacts (see MANIFEST.in for the sdist side) so an
installed copy sees the same files ``tests/run/test_shipped_artifacts.py``
exercises from a checkout.
"""

from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).parent


def _shipped(directory: str, pattern: str) -> list[str]:
    return sorted(str(path.relative_to(ROOT)) for path in (ROOT / directory).glob(pattern))


setup(
    name="scale-sim-repro",
    version="0.1.0",
    description="SCALE-Sim v3 reproduction: cycle-accurate systolic-array simulation",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    data_files=[
        ("share/scale-sim-repro/configs", _shipped("configs", "*.cfg")),
        ("share/scale-sim-repro/topologies", _shipped("topologies", "*.csv")),
    ],
    entry_points={"console_scripts": ["scale-sim-repro=repro.run.cli:main"]},
)
