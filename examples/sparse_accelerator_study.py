"""Design study: how much on-chip memory does a sparse core save?

Reproduces the reasoning behind the paper's Section IX-B "Sparsity"
claim: under a fixed latency budget, a 2:4 sparse core needs a much
smaller SRAM than a dense core (3.00 MB -> 768 kB in the paper).

Run with::

    python examples/sparse_accelerator_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.memory.double_buffer import DoubleBufferMemory, IdealBandwidthBackend
from repro.sparsity.pattern import layerwise_pattern
from repro.sparsity.report import write_sparse_report
from repro.sparsity.sparse_compute import SparseComputeSimulator
from repro.topology.layer import SparsityRatio
from repro.topology.models import resnet18

MEM_SIZES_KB = (96, 192, 384, 768, 1536, 3072)
RATIOS = ("1:4", "2:4", "4:4")
SCALE = 4
BANDWIDTH_WORDS = 16


def total_cycles(ratio: str, mem_kb: int) -> int:
    """End-to-end ResNet-18 cycles (incl. stalls) for one design point."""
    topology = resnet18(scale=SCALE).with_sparsity(ratio)
    words = mem_kb * 1024 // 2
    simulator = SparseComputeSimulator(32, 32, ifmap_sram_words=words, ofmap_sram_words=words)
    cycles = 0
    for layer in topology:
        shape = layer.to_gemm()
        pattern = layerwise_pattern(shape.m, shape.k, layer.sparsity or SparsityRatio(4, 4))
        result = simulator.simulate_layer(layer, pattern=pattern)
        memory = DoubleBufferMemory(IdealBandwidthBackend(BANDWIDTH_WORDS))
        cycles += memory.run(result.fold_specs).total_cycles
    return cycles


def main() -> None:
    print(f"ResNet-18 ({SCALE}x scale), 32x32 WS array, {BANDWIDTH_WORDS} words/cycle\n")
    print("total cycles (incl. stalls) per design point:")
    header = "  ".join(f"{kb:>7}kB" for kb in MEM_SIZES_KB)
    print(f"{'ratio':8s}{header}")
    curves = {}
    for ratio in RATIOS:
        curves[ratio] = [total_cycles(ratio, kb) for kb in MEM_SIZES_KB]
        cells = "  ".join(f"{c:>9,}" for c in curves[ratio])
        print(f"{ratio:8s}{cells}")

    # Latency-constrained design: what does each core need to hit the
    # dense core's best latency?
    budget = curves["4:4"][-1]
    print(f"\nlatency budget = dense core at {MEM_SIZES_KB[-1]} kB: {budget:,} cycles")
    for ratio in RATIOS:
        feasible = [kb for kb, c in zip(MEM_SIZES_KB, curves[ratio]) if c <= budget]
        if feasible:
            print(f"  {ratio} core meets it with {feasible[0]:>5} kB on-chip memory")
        else:
            print(f"  {ratio} core cannot meet it in this sweep")

    # Storage report for the 2:4 design.
    simulator = SparseComputeSimulator(32, 32)
    results = [
        simulator.simulate_layer(layer, with_fold_specs=False)
        for layer in resnet18(scale=SCALE).with_sparsity("2:4")
    ]
    path = write_sparse_report(results, "outputs/sparse_study")
    print(f"\nSPARSE_REPORT written to {path}")


if __name__ == "__main__":
    main()
