"""Quickstart: simulate a CNN on a TPU-like accelerator in ~20 lines.

Run with::

    python examples/quickstart.py

Covers the three things every user does first: pick a preset, run a
built-in topology, and read the headline numbers + CSV reports.

The fourth thing is usually a design-space sweep; that is one
:class:`~repro.run.sweep.SweepSpec` away::

    from repro.run import Axis, SweepRunner, SweepSpec

    spec = SweepSpec(
        base=get_preset("google_tpu_v2"),  # DRAM-enabled, so channels matter
        axes=[Axis("dram.channels", (1, 2, 4, 8))],
        topologies=[get_model("resnet18", scale=8)],
    )
    for point in SweepRunner(workers=4).run(spec):
        print(point.assignment_dict, point.total_cycles)

(equivalently: ``scale-sim-repro sweep --preset google_tpu_v2
--model resnet18 --scale 8 --set dram.channels=1,2,4,8 --workers 4``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import Simulator, get_model, get_preset


def main() -> None:
    # 1. A named architecture preset (128x128 WS array, DDR4-2400,
    #    128-entry request queues — the paper's Section V-C setup).
    config = get_preset("google_tpu_v2")

    # 2. A built-in workload; `scale=8` shrinks the spatial dims so the
    #    cycle-accurate DRAM simulation finishes in seconds.
    topology = get_model("resnet18", scale=8)

    # 3. Simulate.
    result = Simulator(config).run(topology)

    print(f"workload:        {result.topology_name} ({len(result.layers)} layers)")
    print(f"compute cycles:  {result.total_compute_cycles:,}")
    print(f"stall cycles:    {result.total_stall_cycles:,}")
    print(f"total cycles:    {result.total_cycles:,}")
    print(f"total MACs:      {result.total_macs:,}")

    stats = result.dram_stats
    print(f"DRAM requests:   {stats.requests:,} (row-hit rate {stats.row_hit_rate:.1%})")
    print(f"avg read latency {stats.average_read_latency:.1f} cycles")

    print("\nper-layer breakdown (first 5):")
    for layer in result.layers[:5]:
        print(
            f"  {layer.layer_name:10s} compute={layer.compute_cycles:>9,}"
            f" total={layer.total_cycles:>9,}"
            f" stall={layer.stall_fraction:6.1%}"
            f" util={layer.compute.compute_utilization:6.1%}"
        )

    # 4. Write the classic SCALE-Sim CSV reports.
    paths = result.write_reports("outputs")
    print("\nreports:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
