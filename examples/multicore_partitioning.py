"""Multi tensor-core exploration (paper Section III).

Walks the three partitioning schemes across a grid of core counts for a
large GEMM, sizes the shared L2, and demonstrates heterogeneous cores
and Simba-style non-uniform workload partitioning.

Run with::

    python examples/multicore_partitioning.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.dataflow import Dataflow
from repro.multicore.multicore_sim import CoreSpec, MultiCoreSimulator
from repro.multicore.noc import NopLink
from repro.multicore.partition import PartitionScheme, partition_tradeoff
from repro.multicore.simd import SimdUnit
from repro.topology.layer import GemmLayer, GemmShape


def main() -> None:
    shape = GemmShape(m=5000, n=1000, k=5000)
    print(f"GEMM {shape.m}x{shape.n}x{shape.k}, 16x16 arrays, OS dataflow\n")

    print("-- best (Pr, Pc) per scheme, compute-optimised (Figure 3a style) --")
    print(f"{'cores':>6s} {'scheme':18s}{'PrxPc':>7s}{'cycles':>12s}{'L1 words':>14s}{'L2 words':>13s}")
    for cores in (16, 32, 64):
        tradeoff = partition_tradeoff(
            shape, Dataflow.OUTPUT_STATIONARY, 16, 16, cores, objective="cycles"
        )
        for scheme in PartitionScheme:
            choice = tradeoff[scheme]
            print(
                f"{cores:>6d} {scheme.value:18s}"
                f"{choice.partitions_row}x{choice.partitions_col:>4d}"
                f"{choice.runtime_cycles:>12,}{choice.l1_footprint:>14,}"
                f"{choice.l2_footprint:>13,}"
            )

    layer = GemmLayer("big_gemm", m=shape.m, n=shape.n, k=shape.k)

    print("\n-- shared L2 sizing (4x4 grid, spatial) --")
    grid = MultiCoreSimulator.homogeneous(4, 4, 16, 16, "os", l2_sram_kb=4096)
    result = grid.simulate_layer(layer)
    print(f"latency: {result.latency_cycles:,} cycles across {result.num_cores} cores")
    print(
        f"L1 footprint (with duplication): {result.l1_footprint_words * 2 / 1024:,.0f} kB; "
        f"shared-L2 deduplicated: {result.l2_required_kb:,.0f} kB "
        f"({'fits' if result.l2_fits else 'does NOT fit'} in 4096 kB)"
    )

    print("\n-- heterogeneous tensor cores (2 big + 2 small, each with SIMD) --")
    cores = [
        CoreSpec(32, 32, simd=SimdUnit(lanes=128)),
        CoreSpec(8, 8, simd=SimdUnit(lanes=32)),
        CoreSpec(32, 32, simd=SimdUnit(lanes=128)),
        CoreSpec(8, 8, simd=SimdUnit(lanes=32)),
    ]
    hetero = MultiCoreSimulator(cores=cores, partitions_row=2, partitions_col=2, dataflow="os")
    result = hetero.simulate_layer(layer)
    for core in result.cores:
        print(
            f"  core{core.core_index} ({core.spec.array_rows}x{core.spec.array_cols}):"
            f" share={core.work_share:5.1%} compute={core.compute_cycles:>10,}"
            f" simd={core.simd_cycles:>8,}"
        )
    print(f"  layer latency = {result.latency_cycles:,} (slowest core)")

    print("\n-- Simba-style non-uniform partitioning (NoP-latency aware) --")
    def chiplet_grid(nonuniform: bool) -> MultiCoreSimulator:
        specs = [
            CoreSpec(16, 16, nop=NopLink(hops=h, latency_per_hop=2000))
            for h in (0, 1, 2, 6)
        ]
        return MultiCoreSimulator(
            cores=specs, partitions_row=2, partitions_col=2, dataflow="os",
            nonuniform=nonuniform,
        )

    uniform = chiplet_grid(False).simulate_layer(layer)
    balanced = chiplet_grid(True).simulate_layer(layer)
    print(f"  uniform shares:     latency {uniform.latency_cycles:,}")
    print(f"  non-uniform shares: latency {balanced.latency_cycles:,}")
    shares = ", ".join(f"{c.work_share:.1%}" for c in balanced.cores)
    print(f"  rebalanced shares by hop distance: {shares}")


if __name__ == "__main__":
    main()
