"""Energy / EdP exploration across dataflows and array sizes (Section VII).

Reproduces the decision the paper's abstract leads with: judged by
latency alone a 128x128 array dominates, but energy and EdP tell a
different story — and the best dataflow depends on the metric too.

Run with::

    python examples/energy_dataflow_explorer.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.energy.accelergy import AccelergyLite
from repro.energy.yaml_gen import write_architecture_yaml
from repro.topology.models import vit_base

TOPOLOGY = vit_base(scale=2, blocks=1)


def evaluate(array: int, dataflow: str):
    arch = ArchitectureConfig(
        array_rows=array, array_cols=array, dataflow=dataflow, bandwidth_words=200
    )
    energy_cfg = EnergyConfig(enabled=True)
    run = Simulator(SystemConfig(arch=arch, energy=energy_cfg)).run(TOPOLOGY)
    report = AccelergyLite(arch, energy_cfg).estimate_run(run)
    return run, report


def main() -> None:
    print("ViT-base block (2x scale), weight-stationary, array-size sweep\n")
    print(f"{'array':>6s}{'cycles':>12s}{'energy mJ':>11s}{'power W':>9s}{'EdP':>14s}")
    points = {}
    for array in (16, 32, 64, 128):
        run, report = evaluate(array, "ws")
        edp = run.total_cycles * report.total_mj
        points[array] = (run.total_cycles, report.total_mj, edp)
        print(
            f"{array:>6d}{run.total_cycles:>12,}{report.total_mj:>11.3f}"
            f"{report.average_power_w:>9.3f}{edp:>14.1f}"
        )
    fastest = min(points, key=lambda a: points[a][0])
    frugal = min(points, key=lambda a: points[a][1])
    best_edp = min(points, key=lambda a: points[a][2])
    print(f"\nfastest: {fastest}x{fastest}; most energy-frugal: {frugal}x{frugal}; "
          f"best EdP: {best_edp}x{best_edp}")

    print("\ndataflow comparison on 32x32 (Figure 15 style):")
    print(f"{'dataflow':>9s}{'cycles':>12s}{'energy mJ':>11s}{'dram mJ':>9s}")
    for dataflow in ("os", "ws", "is"):
        run, report = evaluate(32, dataflow)
        print(
            f"{dataflow:>9s}{run.total_cycles:>12,}{report.total_mj:>11.3f}"
            f"{report.dram_pj * 1e-9:>9.3f}"
        )

    print("\nper-component energy (32x32, OS):")
    _, report = evaluate(32, "os")
    for name, pj in sorted(report.per_instance_pj.items(), key=lambda kv: -kv[1]):
        print(f"  {name:14s}{pj * 1e-9:>9.4f} mJ")
    print(f"  {'leakage':14s}{report.leakage_pj * 1e-9:>9.4f} mJ")

    path = write_architecture_yaml(
        ArchitectureConfig(array_rows=32, array_cols=32),
        EnergyConfig(enabled=True),
        "outputs/energy_explorer",
    )
    print(f"\nAccelergy-style architecture description written to {path}")


if __name__ == "__main__":
    main()
