"""Energy / EdP exploration across dataflows and array sizes (Section VII).

Reproduces the decision the paper's abstract leads with: judged by
latency alone a 128x128 array dominates, but energy and EdP tell a
different story — and the best dataflow depends on the metric too.

Both explorations run as :mod:`repro.run.sweep` sweeps through a shared
result cache, so the 32x32 weight-stationary point — which appears in
the array sweep *and* the dataflow sweep — is simulated only once.

Run with::

    python examples/energy_dataflow_explorer.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.energy.yaml_gen import write_architecture_yaml
from repro.run.sweep import Axis, ResultCache, SweepRunner, SweepSpec
from repro.topology.models import vit_base

TOPOLOGY = vit_base(scale=2, blocks=1)
BASE = SystemConfig(
    arch=ArchitectureConfig(dataflow="ws", bandwidth_words=200),
    energy=EnergyConfig(enabled=True),
)


def main() -> None:
    runner = SweepRunner(workers=2, cache=ResultCache())

    print("ViT-base block (2x scale), weight-stationary, array-size sweep\n")
    print(f"{'array':>6s}{'cycles':>12s}{'energy mJ':>11s}{'power W':>9s}{'EdP':>14s}")
    array_results = runner.run(
        SweepSpec(
            base=BASE,
            axes=[
                Axis("array", (16, 32, 64, 128), fields=("arch.array_rows", "arch.array_cols"))
            ],
            topologies=[TOPOLOGY],
            name="array_sweep",
        )
    )
    points = {}
    for result in array_results:
        array = result.assignment_dict["array"]
        points[array] = (result.total_cycles, result.energy_mj, result.edp)
        print(
            f"{array:>6d}{result.total_cycles:>12,}{result.energy_mj:>11.3f}"
            f"{result.energy_report.average_power_w:>9.3f}{result.edp:>14.1f}"
        )
    fastest = min(points, key=lambda a: points[a][0])
    frugal = min(points, key=lambda a: points[a][1])
    best_edp = min(points, key=lambda a: points[a][2])
    print(f"\nfastest: {fastest}x{fastest}; most energy-frugal: {frugal}x{frugal}; "
          f"best EdP: {best_edp}x{best_edp}")

    print("\ndataflow comparison on 32x32 (Figure 15 style):")
    print(f"{'dataflow':>9s}{'cycles':>12s}{'energy mJ':>11s}{'dram mJ':>9s}{'cache':>7s}")
    base_32 = BASE.replace(
        arch=ArchitectureConfig(array_rows=32, array_cols=32, bandwidth_words=200)
    )
    dataflow_results = runner.run(
        SweepSpec(
            base=base_32,
            axes=[Axis("arch.dataflow", ("os", "ws", "is"))],
            topologies=[TOPOLOGY],
            name="dataflow_sweep",
        )
    )
    for result in dataflow_results:
        origin = "hit" if result.from_cache else "miss"
        print(
            f"{result.assignment_dict['arch.dataflow']:>9s}{result.total_cycles:>12,}"
            f"{result.energy_mj:>11.3f}{result.energy_report.dram_pj * 1e-9:>9.3f}"
            f"{origin:>7s}"
        )
    print(f"(cache: {runner.cache.hits} hits / {runner.cache.misses} misses — "
          "the 32x32 WS point is shared with the array sweep)")

    print("\nper-component energy (32x32, OS):")
    os_report = next(
        r for r in dataflow_results if r.assignment_dict["arch.dataflow"] == "os"
    ).energy_report
    for name, pj in sorted(os_report.per_instance_pj.items(), key=lambda kv: -kv[1]):
        print(f"  {name:14s}{pj * 1e-9:>9.4f} mJ")
    print(f"  {'leakage':14s}{os_report.leakage_pj * 1e-9:>9.4f} mJ")

    path = write_architecture_yaml(
        ArchitectureConfig(array_rows=32, array_cols=32),
        EnergyConfig(enabled=True),
        "outputs/energy_explorer",
    )
    print(f"\nAccelergy-style architecture description written to {path}")


if __name__ == "__main__":
    main()
