"""On-chip layout tuning: banks, ports and loop orders (Section VI).

Shows how the same total on-chip bandwidth behaves very differently
depending on how it is sliced into banks, and how a custom inter-line
loop order changes bank-conflict behaviour for a convolution's ifmap.

Both studies ride the trace fan-out: each sweep is a single
``evaluate_layout_slowdown_many`` call, so the layer's fold traces are
generated once per dataflow and broadcast to every configuration under
test instead of being regenerated per point.

Run with::

    python examples/layout_bank_tuning.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.layout.integrate import LayoutEvalConfig, evaluate_layout_slowdown_many
from repro.layout.spec import LayoutSpec, TensorView
from repro.topology.models import resnet18

LAYER = resnet18(scale=8).layer_named("conv2_1a")
ARRAY = 32
BANDWIDTH = 64
BANKS = (1, 2, 4, 8, 16)


def main() -> None:
    print(f"layer {LAYER.name}: ifmap {LAYER.ifmap_h}x{LAYER.ifmap_w}x{LAYER.channels}, "
          f"{ARRAY}x{ARRAY} array, {BANDWIDTH} words/cycle total\n")

    print("-- bank-count sweep at fixed bandwidth (Figure 12 style) --")
    print(f"{'dataflow':>9s}" + "".join(f"{b:>9d}b" for b in BANKS))
    grid = [
        LayoutEvalConfig(num_banks=banks, total_bandwidth_words=BANDWIDTH)
        for banks in BANKS
    ]
    for dataflow in ("is", "ws", "os"):
        # Full-layer traces, one streaming pass per dataflow: the fan-out
        # shares trace generation across the whole bank grid (pass
        # evaluator="reference" per config to cross-check the scalar
        # specification).
        results = evaluate_layout_slowdown_many(
            LAYER, dataflow, ARRAY, ARRAY, grid
        )
        print(f"{dataflow:>9s}" + "".join(f"{r.slowdown:>+9.3f}" for r in results))

    print("\n-- custom layouts: channel-major vs row-major inter-line order --")
    view = TensorView(c_dim=LAYER.channels, h_dim=LAYER.ifmap_h, w_dim=LAYER.ifmap_w)
    layouts = {
        "channel-major (C16 H2 W2)": LayoutSpec(
            view=view, c1_step=min(16, view.c_dim), h1_step=2, w1_step=2,
            num_banks=8, bandwidth_per_bank=8,
        ),
        "row-major (C4 H1 W16)": LayoutSpec(
            view=view, c1_step=4, h1_step=1, w1_step=min(16, view.w_dim),
            num_banks=8, bandwidth_per_bank=8,
        ),
    }
    custom = [
        LayoutEvalConfig(num_banks=8, total_bandwidth_words=BANDWIDTH, layout=layout)
        for layout in layouts.values()
    ]
    for name, result in zip(
        layouts, evaluate_layout_slowdown_many(LAYER, "ws", ARRAY, ARRAY, custom)
    ):
        print(f"  {name:28s} slowdown {result.slowdown:+.3f} "
              f"({result.layout_cycles:,} vs {result.bandwidth_cycles:,} cycles)")

    print("\nmore banks -> finer-grained access -> fewer conflicts, and the")
    print("inter-line order decides which dataflow streams stay conflict-free.")


if __name__ == "__main__":
    main()
