"""Design-space walk over the main-memory subsystem (paper Section V).

Sweeps DRAM technology, channel count and request-queue depth for a
ResNet-18 slice and prints how stalls and row-buffer locality respond —
the kind of exploration SCALE-Sim v2's fixed-latency memory could not
support.

Run with::

    python examples/dram_design_space.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.topology.models import resnet18

SCALE = 8
TOPOLOGY = resnet18(scale=SCALE).first_layers(8)
ARCH = ArchitectureConfig(array_rows=32, array_cols=32, dataflow="ws")


def run(dram: DramConfig):
    result = Simulator(SystemConfig(arch=ARCH, dram=dram)).run(TOPOLOGY)
    stats = result.dram_stats
    return result.total_cycles, result.total_stall_cycles, stats


def main() -> None:
    print(f"ResNet-18 first 8 layers ({SCALE}x scale) on a 32x32 WS array\n")

    print("-- DRAM technology sweep (1 channel, 128-entry queues) --")
    print(f"{'tech':8s}{'total cycles':>14s}{'stalls':>12s}{'row hits':>10s}{'avg lat':>9s}")
    for tech in ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm2"):
        total, stalls, stats = run(DramConfig(enabled=True, technology=tech))
        print(
            f"{tech:8s}{total:>14,}{stalls:>12,}{stats.row_hit_rate:>10.1%}"
            f"{stats.average_read_latency:>9.1f}"
        )

    print("\n-- channel sweep (DDR4) --")
    print(f"{'channels':>8s}{'total cycles':>14s}{'throughput GB/s':>17s}")
    for channels in (1, 2, 4, 8):
        total, _, stats = run(DramConfig(enabled=True, technology="ddr4", channels=channels))
        print(f"{channels:>8d}{total:>14,}{stats.throughput_gbps(0.833):>17.2f}")

    print("\n-- request-queue sweep (DDR4, 1 channel) --")
    print(f"{'entries':>8s}{'total cycles':>14s}{'stall frac':>12s}")
    for queue in (16, 32, 128, 512):
        total, stalls, _ = run(
            DramConfig(
                enabled=True, technology="ddr4",
                read_queue_entries=queue, write_queue_entries=queue,
            )
        )
        print(f"{queue:>8d}{total:>14,}{stalls / total:>12.1%}")

    print("\nObservations (matching the paper's Figures 9 and 10):")
    print(" * channel count lifts throughput for the streaming conv layers,")
    print(" * queue depth 32 -> 128 removes most backpressure stalls,")
    print(" * faster technologies shave round-trip latency, not stalls.")


if __name__ == "__main__":
    main()
