"""Design-space walk over the main-memory subsystem (paper Section V).

Sweeps DRAM technology, channel count and request-queue depth for a
ResNet-18 slice and prints how stalls and row-buffer locality respond —
the kind of exploration SCALE-Sim v2's fixed-latency memory could not
support.

Each sweep is a declarative :class:`~repro.run.sweep.SweepSpec` fanned
out by a :class:`~repro.run.sweep.SweepRunner`.  The three sweeps share
one :class:`~repro.run.sweep.ResultCache`, so their common grid point
(DDR4, 1 channel, 128-entry queues) is simulated exactly once.

Run with::

    python examples/dram_design_space.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.run.sweep import Axis, ResultCache, SweepRunner, SweepSpec
from repro.topology.models import resnet18

SCALE = 8
TOPOLOGY = resnet18(scale=SCALE).first_layers(8)
BASE = SystemConfig(
    arch=ArchitectureConfig(array_rows=32, array_cols=32, dataflow="ws"),
    dram=DramConfig(enabled=True, technology="ddr4"),
)


def run_sweep(runner: SweepRunner, axis: Axis):
    """One-axis sweep of the base system over the ResNet-18 slice."""
    spec = SweepSpec(base=BASE, axes=[axis], topologies=[TOPOLOGY], name=axis.name)
    return runner.run(spec)


def main() -> None:
    print(f"ResNet-18 first 8 layers ({SCALE}x scale) on a 32x32 WS array\n")
    runner = SweepRunner(workers=2, cache=ResultCache())

    print("-- DRAM technology sweep (1 channel, 128-entry queues) --")
    print(f"{'tech':8s}{'total cycles':>14s}{'stalls':>12s}{'row hits':>10s}{'avg lat':>9s}")
    for result in run_sweep(
        runner, Axis("dram.technology", ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm2"))
    ):
        stats = result.run_result.dram_stats
        print(
            f"{result.assignment_dict['dram.technology']:8s}"
            f"{result.total_cycles:>14,}{result.total_stall_cycles:>12,}"
            f"{stats.row_hit_rate:>10.1%}{stats.average_read_latency:>9.1f}"
        )

    print("\n-- channel sweep (DDR4) --")
    print(f"{'channels':>8s}{'total cycles':>14s}{'throughput GB/s':>17s}{'cache':>7s}")
    for result in run_sweep(runner, Axis("dram.channels", (1, 2, 4, 8))):
        stats = result.run_result.dram_stats
        origin = "hit" if result.from_cache else "miss"
        print(
            f"{result.assignment_dict['dram.channels']:>8d}{result.total_cycles:>14,}"
            f"{stats.throughput_gbps(0.833):>17.2f}{origin:>7s}"
        )

    print("\n-- request-queue sweep (DDR4, 1 channel) --")
    print(f"{'entries':>8s}{'total cycles':>14s}{'stall frac':>12s}{'cache':>7s}")
    for result in run_sweep(
        runner,
        Axis(
            "queue",
            (16, 32, 128, 512),
            fields=("dram.read_queue_entries", "dram.write_queue_entries"),
        ),
    ):
        total = result.total_cycles
        origin = "hit" if result.from_cache else "miss"
        print(
            f"{result.assignment_dict['queue']:>8d}{total:>14,}"
            f"{result.total_stall_cycles / total:>12.1%}{origin:>7s}"
        )

    print(
        f"\ncache: {runner.cache.hits} hits / {runner.cache.misses} misses "
        "(the DDR4 / 1-channel / 128-entry point recurs in all three sweeps)"
    )
    print("\nObservations (matching the paper's Figures 9 and 10):")
    print(" * channel count lifts throughput for the streaming conv layers,")
    print(" * queue depth 32 -> 128 removes most backpressure stalls,")
    print(" * faster technologies shave round-trip latency, not stalls.")


if __name__ == "__main__":
    main()
